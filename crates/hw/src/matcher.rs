//! Timing and functional model of the BRIEF Matcher (Fig. 6).
//!
//! Architecture (§3.2): current-frame descriptors arrive from the ORB
//! Extractor; map descriptors stream from SDRAM into the Descriptor
//! Cache; the Distance Computing module evaluates Hamming distances with
//! P parallel XOR/popcount units; the Comparator tracks the minimum per
//! query and results drain to the Result Cache, then SDRAM.
//!
//! Timing: map-descriptor loading overlaps with computation (the cache is
//! double-buffered), so the latency is `⌈n·m/P⌉` compute cycles plus the
//! query load and result write-back. With the design point P = 6 and a
//! 2304-point map, the VGA workload reproduces Table 2's 4.0 ms.

use crate::axi::AxiConfig;
use crate::clock::{Cycles, FPGA_CLOCK_HZ};
use eslam_features::matcher::{match_brute_force, DescriptorMatch};
use eslam_features::Descriptor;

/// Bytes per stored descriptor (256 bits).
pub const DESCRIPTOR_BYTES: u64 = 32;

/// Bytes per match result record (query idx, train idx, distance).
pub const RESULT_RECORD_BYTES: u64 = 8;

/// Nominal number of query features (the Heap capacity).
pub const NOMINAL_QUERIES: u64 = 1024;

/// Nominal global-map size: exactly fills the 16-BRAM descriptor cache
/// (16 × 36 Kb = 72 KiB = 2304 descriptors × 32 B).
pub const NOMINAL_MAP_POINTS: u64 = 2304;

/// Timing parameters of the matcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatcherModel {
    /// AXI configuration for SDRAM traffic.
    pub axi: AxiConfig,
    /// Parallel Hamming distance units (the paper's design point: 6).
    pub parallel_units: u32,
    /// Descriptor Cache capacity in descriptors.
    pub cache_capacity: u64,
}

impl Default for MatcherModel {
    fn default() -> Self {
        MatcherModel {
            axi: AxiConfig::default(),
            parallel_units: crate::resource::DEFAULT_MATCHER_PARALLELISM,
            cache_capacity: NOMINAL_MAP_POINTS,
        }
    }
}

/// Cycle breakdown of one matching pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MatchingTiming {
    /// Cycles loading the query descriptors from the extractor/SDRAM.
    pub query_load_cycles: Cycles,
    /// Distance-computation cycles: ⌈n·m / P⌉.
    pub compute_cycles: Cycles,
    /// Residual map-streaming cycles not hidden behind compute.
    pub map_stream_residual_cycles: Cycles,
    /// Result write-back cycles.
    pub writeback_cycles: Cycles,
    /// Grand total.
    pub total: Cycles,
}

impl MatchingTiming {
    /// Total latency in milliseconds at the FPGA clock.
    pub fn total_ms(&self) -> f64 {
        self.total.to_millis(FPGA_CLOCK_HZ)
    }
}

impl MatcherModel {
    /// Latency of matching `n_query` descriptors against `m_map` map
    /// points.
    // Timing fields are filled stage by stage, mirroring the datapath.
    #[allow(clippy::field_reassign_with_default)]
    pub fn matching_timing(&self, n_query: u64, m_map: u64) -> MatchingTiming {
        let mut t = MatchingTiming::default();
        t.query_load_cycles = self.axi.transfer_cycles(n_query * DESCRIPTOR_BYTES);
        let pairs = n_query * m_map;
        t.compute_cycles = Cycles(pairs.div_ceil(self.parallel_units as u64));
        // Map descriptors stream into the (double-buffered) cache while
        // computing; only the part beyond the compute window is exposed.
        let map_load = self.axi.transfer_cycles(m_map * DESCRIPTOR_BYTES);
        t.map_stream_residual_cycles = Cycles(map_load.0.saturating_sub(t.compute_cycles.0));
        t.writeback_cycles = self.axi.transfer_cycles(n_query * RESULT_RECORD_BYTES);
        t.total = t.query_load_cycles
            + t.compute_cycles
            + t.map_stream_residual_cycles
            + t.writeback_cycles;
        t
    }
}

/// Result of a functional + timed matching run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedMatching {
    /// Minimum-distance match per query (the Comparator output).
    pub matches: Vec<DescriptorMatch>,
    /// Modelled latency.
    pub timing: MatchingTiming,
}

/// Runs the hardware matcher: the Comparator performs a pure minimum
/// search (no threshold — filtering happens on the host), bit-identical
/// to [`match_brute_force`] with an unbounded distance cap.
pub fn simulate_matching(
    query: &[Descriptor],
    map: &[Descriptor],
    model: &MatcherModel,
) -> SimulatedMatching {
    let matches = match_brute_force(query, map, u32::MAX);
    let timing = model.matching_timing(query.len() as u64, map.len() as u64);
    SimulatedMatching { matches, timing }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_workload_matches_table2_fm_latency() {
        // Table 2: feature matching on eSLAM takes 4.0 ms.
        let model = MatcherModel::default();
        let t = model.matching_timing(NOMINAL_QUERIES, NOMINAL_MAP_POINTS);
        let ms = t.total_ms();
        assert!(
            (ms - 4.0).abs() < 0.05,
            "FM latency {ms:.3} ms should be ≈ 4.0 ms"
        );
    }

    #[test]
    fn breakdown_sums_to_total() {
        let model = MatcherModel::default();
        let t = model.matching_timing(777, 1500);
        assert_eq!(
            t.total,
            t.query_load_cycles
                + t.compute_cycles
                + t.map_stream_residual_cycles
                + t.writeback_cycles
        );
    }

    #[test]
    fn compute_dominates_at_nominal_point() {
        let model = MatcherModel::default();
        let t = model.matching_timing(NOMINAL_QUERIES, NOMINAL_MAP_POINTS);
        assert!(t.compute_cycles.0 > 9 * t.query_load_cycles.0);
        // Map streaming fully hidden behind compute.
        assert_eq!(t.map_stream_residual_cycles, Cycles::ZERO);
    }

    #[test]
    fn tiny_map_exposes_streaming() {
        // With almost no compute, the map load residual becomes visible.
        let model = MatcherModel::default();
        let t = model.matching_timing(1, 2304);
        assert!(t.map_stream_residual_cycles.0 > 0);
    }

    #[test]
    fn parallelism_scales_compute() {
        let base = MatcherModel::default();
        let double = MatcherModel {
            parallel_units: base.parallel_units * 2,
            ..base
        };
        let t1 = base.matching_timing(1024, 2304);
        let t2 = double.matching_timing(1024, 2304);
        assert!((t1.compute_cycles.0 as f64 / t2.compute_cycles.0 as f64 - 2.0).abs() < 0.01);
    }

    #[test]
    fn cache_capacity_matches_bram_budget() {
        // 16 BRAM36 tiles = 72 KiB = 2304 descriptors.
        assert_eq!(NOMINAL_MAP_POINTS * DESCRIPTOR_BYTES, 16 * 36 * 1024 / 8);
    }

    #[test]
    fn simulated_matching_is_bit_exact_minimum_search() {
        let mk = |seed: u64| {
            let mut words = [0u64; 4];
            for (i, w) in words.iter_mut().enumerate() {
                *w = seed
                    .wrapping_mul(0x9e3779b97f4a7c15)
                    .wrapping_add((i as u64).wrapping_mul(0xbf58476d1ce4e5b9));
            }
            Descriptor::from_words(words)
        };
        let query: Vec<Descriptor> = (0..40).map(|i| mk(i + 1)).collect();
        let map: Vec<Descriptor> = (0..100).map(|i| mk(i * 3 + 7)).collect();
        let model = MatcherModel::default();
        let sim = simulate_matching(&query, &map, &model);
        assert_eq!(sim.matches, match_brute_force(&query, &map, u32::MAX));
        assert_eq!(sim.matches.len(), query.len());
        assert!(sim.timing.total.0 > 0);
    }

    #[test]
    fn zero_queries_cost_almost_nothing() {
        let model = MatcherModel::default();
        let t = model.matching_timing(0, 2304);
        assert_eq!(t.compute_cycles, Cycles::ZERO);
        assert_eq!(t.query_load_cycles, Cycles::ZERO);
    }
}
