//! Timing and functional model of the ORB Extractor (Fig. 4).
//!
//! The extractor is a streaming design: pixels flow through FAST/Harris,
//! NMS, the smoother and the descriptor units at one pixel per cycle,
//! fed by the 3-line ping-pong Image Cache. The timing model charges:
//!
//! * 1 cycle per pyramid pixel (the paper's Image Resizing module
//!   generates the next layer *while* the current one is processed, so
//!   resizing adds no serial time);
//! * a per-row overhead (AXI burst setup and cache-line turnaround);
//! * a cache pre-fill of 16 columns per level (Fig. 5 initialization);
//! * per-candidate stalls in the orientation/BRIEF units (II = 4);
//! * heap drain and AXI write-back of the kept features.
//!
//! For the **original (non-rescheduled) workflow** ablation (§3.1), the
//! descriptor phase cannot overlap detection, and the smoothened frame no
//! longer fits on-chip — every kept keypoint pays an SDRAM patch fetch.
//!
//! Functional results delegate to [`eslam_features::orb::OrbExtractor`],
//! making the simulator's features bit-identical to the software
//! reference by construction (verified end-to-end in `tests/`).

use crate::axi::AxiConfig;
use crate::clock::{Cycles, FPGA_CLOCK_HZ};
use eslam_features::orb::{DescriptorKind, OrbConfig, OrbExtractor, OrbFeatures, Workflow};
use eslam_features::stream;
use eslam_image::pyramid::PyramidConfig;
use eslam_image::GrayImage;

/// Bytes stored per extracted feature (256-bit descriptor + coordinates,
/// level, score).
pub const FEATURE_RECORD_BYTES: u64 = 40;

/// Per-level image dimensions of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelDims {
    /// Level width in pixels.
    pub width: u32,
    /// Level height in pixels.
    pub height: u32,
}

/// A workload description: what the extractor has to chew through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractionWorkload {
    /// Pyramid level dimensions (base first).
    pub levels: Vec<LevelDims>,
    /// NMS-surviving candidate keypoints (the paper's M).
    pub candidates: u64,
    /// Features kept by the Heap (the paper's N ≤ 1024).
    pub kept: u64,
}

impl ExtractionWorkload {
    /// The nominal paper workload: VGA input, 4-level ×1.2 pyramid,
    /// ~2500 candidates filtered to 1024 features (see DESIGN.md).
    pub fn vga_nominal() -> Self {
        ExtractionWorkload::from_pyramid(640, 480, &PyramidConfig::default(), 2500, 1024)
    }

    /// Builds a workload from base dimensions and a pyramid config.
    pub fn from_pyramid(
        width: u32,
        height: u32,
        config: &PyramidConfig,
        candidates: u64,
        kept: u64,
    ) -> Self {
        let levels = (0..config.levels)
            .map(|l| {
                let s = config.scale_of(l);
                LevelDims {
                    width: ((width as f64) / s).round().max(1.0) as u32,
                    height: ((height as f64) / s).round().max(1.0) as u32,
                }
            })
            .collect();
        ExtractionWorkload {
            levels,
            candidates,
            kept,
        }
    }

    /// Total pixels across all levels.
    pub fn total_pixels(&self) -> u64 {
        self.levels
            .iter()
            .map(|l| l.width as u64 * l.height as u64)
            .sum()
    }

    /// Total rows across all levels.
    pub fn total_rows(&self) -> u64 {
        self.levels.iter().map(|l| l.height as u64).sum()
    }
}

/// Calibrated timing parameters of the extractor datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtractorModel {
    /// AXI configuration for SDRAM traffic.
    pub axi: AxiConfig,
    /// Non-overlapped cycles per image row (burst address setup, cache
    /// line turnaround).
    pub row_overhead: u32,
    /// Columns pre-filled before processing starts (Fig. 5: 16).
    pub prefill_columns: u32,
    /// Extra cycles each NMS-surviving candidate occupies the
    /// orientation/BRIEF units beyond the pixel stream (II = 4).
    pub candidate_ii: u32,
    /// Heap drain cycles per kept feature.
    pub heap_drain_ii: u32,
    /// Pipeline flush cycles per level.
    pub level_flush: u32,
    /// SDRAM patch-fetch cycles per keypoint in the *original* workflow
    /// (31 rows of a 31-pixel patch: 31 bursts of 4 beats + setup).
    pub patch_fetch_cycles: u32,
}

impl Default for ExtractorModel {
    fn default() -> Self {
        ExtractorModel {
            axi: AxiConfig::default(),
            row_overhead: 64,
            prefill_columns: 16,
            candidate_ii: 4,
            heap_drain_ii: 2,
            level_flush: 50,
            patch_fetch_cycles: 372,
        }
    }
}

/// Cycle breakdown of one extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExtractionTiming {
    /// Streaming pixel cycles (1 px/cycle).
    pub pixel_cycles: Cycles,
    /// Per-row overhead cycles.
    pub row_overhead_cycles: Cycles,
    /// Cache pre-fill cycles.
    pub prefill_cycles: Cycles,
    /// Candidate-induced stall cycles.
    pub candidate_cycles: Cycles,
    /// Descriptor-phase cycles (original workflow only).
    pub descriptor_phase_cycles: Cycles,
    /// Heap drain cycles.
    pub drain_cycles: Cycles,
    /// AXI write-back cycles for the feature records.
    pub writeback_cycles: Cycles,
    /// Pipeline flush cycles.
    pub flush_cycles: Cycles,
    /// Grand total.
    pub total: Cycles,
}

impl ExtractionTiming {
    /// Total latency in milliseconds at the FPGA clock.
    pub fn total_ms(&self) -> f64 {
        self.total.to_millis(FPGA_CLOCK_HZ)
    }
}

/// On-chip memory requirement of a workflow, in bits (the §3.1 memory
/// argument for rescheduling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Streaming-cache bits (Image + Score + Smoothened caches).
    pub streaming_bits: u64,
    /// Additional frame-buffer bits the workflow needs on-chip (0 for the
    /// rescheduled workflow; the original workflow must either buffer the
    /// smoothened frame or spill it to SDRAM).
    pub buffer_bits: u64,
}

impl ExtractorModel {
    /// Computes the extraction latency for a workload under the given
    /// workflow schedule.
    // Timing fields are filled stage by stage, mirroring the datapath.
    #[allow(clippy::field_reassign_with_default)]
    pub fn extraction_timing(
        &self,
        workload: &ExtractionWorkload,
        workflow: Workflow,
    ) -> ExtractionTiming {
        let mut t = ExtractionTiming::default();
        t.pixel_cycles = Cycles(workload.total_pixels());
        t.row_overhead_cycles = Cycles(workload.total_rows() * self.row_overhead as u64);
        t.prefill_cycles = Cycles(
            workload
                .levels
                .iter()
                .map(|l| self.prefill_columns as u64 * l.height as u64)
                .sum(),
        );
        t.flush_cycles = Cycles(workload.levels.len() as u64 * self.level_flush as u64);
        t.drain_cycles = Cycles(workload.kept * self.heap_drain_ii as u64);
        t.writeback_cycles = self
            .axi
            .transfer_cycles(workload.kept * FEATURE_RECORD_BYTES);

        match workflow {
            Workflow::Rescheduled => {
                // Descriptors computed inline; candidates stall the
                // keypoint sub-pipeline only.
                t.candidate_cycles = Cycles(workload.candidates * self.candidate_ii as u64);
                t.descriptor_phase_cycles = Cycles::ZERO;
            }
            Workflow::Original => {
                // Detection still streams (orientation idle), then a
                // serial descriptor phase over the kept features, each
                // paying an SDRAM patch fetch because the smoothened
                // frame exceeds on-chip capacity.
                t.candidate_cycles = Cycles::ZERO;
                t.descriptor_phase_cycles = Cycles(
                    workload.kept * (self.patch_fetch_cycles as u64 + self.candidate_ii as u64),
                );
            }
        }

        t.total = t.pixel_cycles
            + t.row_overhead_cycles
            + t.prefill_cycles
            + t.candidate_cycles
            + t.descriptor_phase_cycles
            + t.drain_cycles
            + t.writeback_cycles
            + t.flush_cycles;
        t
    }

    /// On-chip memory footprint of a workflow for a base image width
    /// (heights from the workload's level 0).
    pub fn memory_footprint(
        &self,
        workload: &ExtractionWorkload,
        workflow: Workflow,
    ) -> MemoryFootprint {
        let base = workload.levels[0];
        let sizing = crate::cache::CacheSizing {
            image_height: base.height,
            ..Default::default()
        };
        let streaming = sizing.total_bits();
        let buffer = match workflow {
            Workflow::Rescheduled => 0,
            // The original workflow must keep the smoothened pyramid
            // addressable for the post-filter descriptor phase.
            Workflow::Original => workload.total_pixels() * 8,
        };
        MemoryFootprint {
            streaming_bits: streaming,
            buffer_bits: buffer,
        }
    }
}

/// One pipeline stage of the row-band schedule: how many rows of halo it
/// needs around its output row, and the line-buffer rows (and bit width)
/// it holds on-chip to carry that halo.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandStage {
    /// Stage name, matching the software orchestrator's stage list.
    pub name: &'static str,
    /// Rows of halo below the stage's output row (its latency
    /// contribution in raw rows; the NMS entry is its one-scan delay).
    pub halo_rows: u32,
    /// Line-buffer rows the stage holds (physical rows, including the
    /// smoothed ring's mirror copy).
    pub buffer_rows: u32,
    /// Bits per buffered pixel (8-bit pixels, 16-bit horizontal blur
    /// sums).
    pub bits_per_pixel: u32,
}

/// The extractor's row-band schedule: the hardware-side accounting of
/// the line buffers that carry halo rows between the fused stages. This
/// mirrors the software streaming orchestrator
/// ([`eslam_features::stream`]) **stage for stage** — the consistency
/// test below pins each constant to its software counterpart, so the
/// model's line-buffer sizing can never drift from the implemented
/// dataflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BandSchedule {
    /// The fused stages in dataflow order: horizontal/vertical blur,
    /// FAST segment test, NMS, and the orientation/descriptor patch.
    pub stages: [BandStage; 4],
}

impl Default for BandSchedule {
    fn default() -> Self {
        BandSchedule {
            stages: [
                // 7-tap blur: ±3 columns/rows; HROW ring holds the
                // 16-bit horizontal sums for the vertical combine.
                BandStage {
                    name: "blur",
                    halo_rows: stream::STREAM_BLUR_HALO,
                    buffer_rows: stream::HROW_RING_ROWS,
                    bits_per_pixel: 16,
                },
                // FAST-9/16: ±3 raw rows (the radius-3 Bresenham
                // circle), served by the 7-row slice of the image cache.
                BandStage {
                    name: "fast",
                    halo_rows: stream::STREAM_FAST_HALO,
                    buffer_rows: 2 * stream::STREAM_FAST_HALO + 1,
                    bits_per_pixel: 8,
                },
                // 3×3 NMS trails the FAST scan by one row; the score
                // rows hold f64 responses but only for the (sparse)
                // detections, so they are not line buffers — charge the
                // 3-row window at score width for the worst case.
                BandStage {
                    name: "nms",
                    halo_rows: stream::STREAM_NMS_DELAY,
                    buffer_rows: 3,
                    bits_per_pixel: 64,
                },
                // Orientation + descriptor patch: ±15 smoothed rows off
                // the mirrored smoothed ring (32 logical → 64 physical
                // rows).
                BandStage {
                    name: "patch",
                    halo_rows: stream::STREAM_PATCH_HALO,
                    buffer_rows: 2 * stream::SMOOTH_RING_ROWS,
                    bits_per_pixel: 8,
                },
            ],
        }
    }
}

impl BandSchedule {
    /// Raw-row latency between a candidate's row and the last raw row
    /// its emission touches: the maximum of the FAST → NMS chain and the
    /// blur → patch chain (the two paths from the raw stream to a
    /// finished feature).
    pub fn latency_rows(&self) -> u32 {
        let halo = |name: &str| {
            self.stages
                .iter()
                .find(|s| s.name == name)
                .expect("stage present")
                .halo_rows
        };
        (halo("fast") + halo("nms")).max(halo("blur") + halo("patch"))
    }

    /// Total line-buffer bits for a level of the given width — linear in
    /// width and independent of image height, the property that lets the
    /// schedule stream arbitrarily tall frames through fixed caches.
    pub fn line_buffer_bits(&self, width: u32) -> u64 {
        self.stages
            .iter()
            .map(|s| s.buffer_rows as u64 * width as u64 * s.bits_per_pixel as u64)
            .sum()
    }

    /// Models running this schedule as `requested` concurrent band units
    /// over one `width`×`height` level (the PR 10 band-parallel mode).
    ///
    /// The row partition and the clamp to usable interior rows delegate
    /// to the software implementation
    /// ([`eslam_features::stream::band_partition`]), so the model cannot
    /// disagree with the code about who owns which rows. Each band unit
    /// pays the full [`Self::latency_rows`] halo re-scan above its first
    /// owned row (the first band starts at the image border and pays
    /// none) and holds its own copy of the line buffers.
    pub fn parallelize(&self, width: u32, height: u32, requested: usize) -> ParallelBandSchedule {
        let halo = self.latency_rows();
        let band_rows: Vec<(u32, u32)> = stream::band_partition(height, requested)
            .into_iter()
            .map(|r| (r.start as u32, r.end as u32))
            .collect();
        let critical_path_rows = band_rows
            .iter()
            .enumerate()
            .map(|(i, (lo, hi))| (hi - lo) + if i == 0 { 0 } else { halo })
            .max()
            .unwrap_or(0);
        ParallelBandSchedule {
            bands: band_rows.len() as u32,
            band_rows,
            halo_rows: halo,
            total_line_buffer_bits: self.line_buffer_bits(width),
            critical_path_rows,
        }
    }
}

/// The multi-band parallel variant of [`BandSchedule`]: `bands`
/// concurrent band units over one pyramid level, each re-scanning a
/// halo of `halo_rows` above its owned rows and holding its own
/// line-buffer copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelBandSchedule {
    /// Concurrent band units after clamping to usable interior rows.
    pub bands: u32,
    /// Owned finalize rows `[start, end)` per band, in raster order.
    pub band_rows: Vec<(u32, u32)>,
    /// Halo rows each non-first band re-scans above its owned range
    /// (pinned to the software `STREAM_LATENCY_ROWS`).
    pub halo_rows: u32,
    /// Per-band line-buffer bits: each unit duplicates the full
    /// single-stream ring set ([`BandSchedule::line_buffer_bits`]).
    pub total_line_buffer_bits: u64,
    /// Rows processed by the slowest band unit, halo included — the
    /// level's latency in row-times when all units run concurrently.
    pub critical_path_rows: u32,
}

impl ParallelBandSchedule {
    /// Aggregate on-chip line-buffer bits across all band units — the
    /// area cost of the parallel schedule.
    pub fn aggregate_line_buffer_bits(&self) -> u64 {
        self.bands as u64 * self.total_line_buffer_bits
    }

    /// Projected speedup over the single-band stream: total owned rows
    /// divided by the critical-path rows. Halo re-scans are pure
    /// overhead, so the projection saturates below the band count as
    /// bands shrink toward the 18-row halo.
    pub fn projected_speedup(&self) -> f64 {
        if self.critical_path_rows == 0 {
            return 1.0;
        }
        let owned: u64 = self.band_rows.iter().map(|(lo, hi)| (hi - lo) as u64).sum();
        owned as f64 / self.critical_path_rows as f64
    }
}

/// Result of a functional + timed extraction run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedExtraction {
    /// The extracted features (bit-identical to the software reference).
    pub features: OrbFeatures,
    /// The modelled hardware latency.
    pub timing: ExtractionTiming,
}

/// Runs the hardware extractor on an image: functional results from the
/// bit-exact reference datapath, timing from the cycle model using the
/// *actual* candidate/kept counts of this image.
pub fn simulate_extraction(image: &GrayImage, model: &ExtractorModel) -> SimulatedExtraction {
    let config = OrbConfig {
        descriptor: DescriptorKind::RsBrief,
        workflow: Workflow::Rescheduled,
        ..Default::default()
    };
    let extractor = OrbExtractor::new(config);
    let features = extractor.extract(image);
    let workload = ExtractionWorkload::from_pyramid(
        image.width(),
        image.height(),
        &config.pyramid,
        features.stats.candidates as u64,
        features.stats.kept as u64,
    );
    let timing = model.extraction_timing(&workload, Workflow::Rescheduled);
    SimulatedExtraction { features, timing }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vga_nominal_matches_table2_fe_latency() {
        // Table 2: feature extraction on eSLAM takes 9.1 ms.
        let model = ExtractorModel::default();
        let timing =
            model.extraction_timing(&ExtractionWorkload::vga_nominal(), Workflow::Rescheduled);
        let ms = timing.total_ms();
        assert!(
            (ms - 9.1).abs() < 0.1,
            "FE latency {ms:.3} ms should be ≈ 9.1 ms"
        );
    }

    #[test]
    fn workload_pixel_counts() {
        let w = ExtractionWorkload::vga_nominal();
        assert_eq!(w.levels.len(), 4);
        assert_eq!(
            w.levels[0],
            LevelDims {
                width: 640,
                height: 480
            }
        );
        assert_eq!(
            w.levels[1],
            LevelDims {
                width: 533,
                height: 400
            }
        );
        // 640×480 + 533×400 + 444×333 + 370×278 = 771,112.
        assert_eq!(w.total_pixels(), 771_112);
        assert_eq!(w.total_rows(), 1491);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let model = ExtractorModel::default();
        for workflow in [Workflow::Rescheduled, Workflow::Original] {
            let t = model.extraction_timing(&ExtractionWorkload::vga_nominal(), workflow);
            let sum = t.pixel_cycles
                + t.row_overhead_cycles
                + t.prefill_cycles
                + t.candidate_cycles
                + t.descriptor_phase_cycles
                + t.drain_cycles
                + t.writeback_cycles
                + t.flush_cycles;
            assert_eq!(sum, t.total);
        }
    }

    #[test]
    fn rescheduling_reduces_latency() {
        // §3.1: "the latency has been optimized significantly due to the
        // eliminated idle states".
        let model = ExtractorModel::default();
        let w = ExtractionWorkload::vga_nominal();
        let rescheduled = model.extraction_timing(&w, Workflow::Rescheduled);
        let original = model.extraction_timing(&w, Workflow::Original);
        assert!(original.total > rescheduled.total);
        let saving = 1.0 - rescheduled.total.0 as f64 / original.total.0 as f64;
        assert!(
            (0.15..0.45).contains(&saving),
            "latency saving {saving:.2} out of expected band"
        );
    }

    #[test]
    fn rescheduling_eliminates_frame_buffer() {
        // §3.1: "the required on-chip cache is also reduced dramatically".
        let model = ExtractorModel::default();
        let w = ExtractionWorkload::vga_nominal();
        let resched = model.memory_footprint(&w, Workflow::Rescheduled);
        let orig = model.memory_footprint(&w, Workflow::Original);
        assert_eq!(resched.buffer_bits, 0);
        assert!(orig.buffer_bits > 10 * resched.streaming_bits);
    }

    #[test]
    fn more_candidates_cost_more_cycles() {
        let model = ExtractorModel::default();
        let mut light = ExtractionWorkload::vga_nominal();
        light.candidates = 500;
        let mut heavy = ExtractionWorkload::vga_nominal();
        heavy.candidates = 5000;
        let tl = model.extraction_timing(&light, Workflow::Rescheduled);
        let th = model.extraction_timing(&heavy, Workflow::Rescheduled);
        assert!(th.total > tl.total);
        assert_eq!(th.total.0 - tl.total.0, 4500 * 4);
    }

    #[test]
    fn two_level_pyramid_pixel_ratio_matches_48_percent() {
        // §4.4 cross-check: 4 levels process 48% more pixels than 2.
        let four = ExtractionWorkload::from_pyramid(640, 480, &PyramidConfig::default(), 0, 0);
        let two = ExtractionWorkload::from_pyramid(
            640,
            480,
            &PyramidConfig {
                levels: 2,
                scale_factor: 1.2,
            },
            0,
            0,
        );
        let ratio = four.total_pixels() as f64 / two.total_pixels() as f64;
        assert!((ratio - 1.48).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn band_schedule_mirrors_the_software_stream() {
        // Stage-for-stage consistency with the software orchestrator:
        // same stage names, same halo rows, same total latency.
        let schedule = BandSchedule::default();
        let (stages, latency) = stream::latency_schedule();
        assert_eq!(schedule.stages.len(), stages.len());
        for (hw, (name, halo)) in schedule.stages.iter().zip(stages) {
            assert_eq!(hw.name, name);
            assert_eq!(hw.halo_rows, halo, "stage {name}");
        }
        assert_eq!(schedule.latency_rows(), latency);
        assert_eq!(schedule.latency_rows(), stream::STREAM_LATENCY_ROWS);
        // The ring buffers cover their widest consumer windows.
        const { assert!(stream::HROW_RING_ROWS > 2 * stream::STREAM_BLUR_HALO) };
        const { assert!(stream::SMOOTH_RING_ROWS > 2 * stream::STREAM_PATCH_HALO) };
    }

    #[test]
    fn band_line_buffers_scale_with_width_not_height() {
        let schedule = BandSchedule::default();
        let vga = schedule.line_buffer_bits(640);
        assert_eq!(vga, 2 * schedule.line_buffer_bits(320));
        // Mirrored smoothed ring (64 rows × 8 b) + h-row ring
        // (8 rows × 16 b) + FAST window (7 rows × 8 b) + NMS scores
        // (3 rows × 64 b) = 888 bits/column.
        assert_eq!(vga, 640 * 888);
        // Far below the full-frame alternative (a VGA smoothed frame
        // alone is 640 × 480 × 8 bits).
        assert!(vga < 640 * 480 * 8 / 4);
    }

    #[test]
    fn parallel_schedule_zip_asserts_the_software_partition() {
        // The parallel model's row ownership IS the software partition —
        // zip-assert band for band, and pin the halo to the software
        // latency constant.
        let schedule = BandSchedule::default();
        for (h, requested) in [(480u32, 4usize), (480, 1), (100, 7), (10, 1000)] {
            let p = schedule.parallelize(640, h, requested);
            let sw = stream::band_partition(h, requested);
            assert_eq!(p.bands as usize, sw.len());
            assert_eq!(p.bands as usize, stream::effective_bands(requested, h));
            for (hw, sw) in p.band_rows.iter().zip(&sw) {
                assert_eq!(*hw, (sw.start as u32, sw.end as u32));
            }
            assert_eq!(p.halo_rows, stream::STREAM_LATENCY_ROWS);
            assert_eq!(p.total_line_buffer_bits, schedule.line_buffer_bits(640));
            assert_eq!(
                p.aggregate_line_buffer_bits(),
                p.bands as u64 * schedule.line_buffer_bits(640)
            );
        }
    }

    #[test]
    fn parallel_schedule_critical_path_and_speedup() {
        let schedule = BandSchedule::default();
        // VGA, 4 bands: 474 interior rows split 119/119/118/118; every
        // band past the first re-scans the 18-row halo, so the critical
        // path is 119 + 18 = 137 row-times → ≈3.46× projected.
        let p = schedule.parallelize(640, 480, 4);
        assert_eq!(p.critical_path_rows, 137);
        let speedup = p.projected_speedup();
        assert!((speedup - 474.0 / 137.0).abs() < 1e-12, "{speedup}");
        assert!(speedup > 3.4 && speedup < 4.0);

        // One band degenerates to the PR 7 single stream: no halo paid,
        // speedup exactly 1.
        let single = schedule.parallelize(640, 480, 1);
        assert_eq!(single.bands, 1);
        assert_eq!(single.critical_path_rows, 474);
        assert_eq!(single.projected_speedup(), 1.0);

        // More bands never lengthen the critical path on a tall level…
        let mut last = u32::MAX;
        for bands in 1..=8 {
            let p = schedule.parallelize(640, 480, bands);
            assert!(p.critical_path_rows <= last, "bands={bands}");
            last = p.critical_path_rows;
        }
        // …but the halo overhead caps the projection below the band
        // count (18 rows re-scanned per extra unit is not free).
        let eight = schedule.parallelize(640, 480, 8);
        assert!(eight.projected_speedup() < 8.0 * 0.85);
    }

    #[test]
    fn parallel_schedule_degenerates_gracefully() {
        let schedule = BandSchedule::default();
        // 4 interior rows: requested 1000 clamps to 4 one-row bands.
        let tiny = schedule.parallelize(64, 10, 1000);
        assert_eq!(tiny.bands, 4);
        assert!(tiny.band_rows.iter().all(|(lo, hi)| hi - lo == 1));
        assert_eq!(tiny.critical_path_rows, 1 + tiny.halo_rows);
        // Sub-scannable level: no band units, unit speedup, zero area.
        let empty = schedule.parallelize(64, 6, 4);
        assert_eq!(empty.bands, 0);
        assert_eq!(empty.critical_path_rows, 0);
        assert_eq!(empty.projected_speedup(), 1.0);
        assert_eq!(empty.aggregate_line_buffer_bits(), 0);
    }

    #[test]
    fn simulate_extraction_consistent_with_software() {
        let img = GrayImage::from_fn(160, 120, |x, y| {
            let base = if (x / 10 + y / 10) % 2 == 0 { 60 } else { 190 };
            base + ((x * 7 + y * 13) % 17) as u8
        });
        let sim = simulate_extraction(&img, &ExtractorModel::default());
        // Functional equality with the reference extractor.
        let reference = OrbExtractor::new(OrbConfig::default()).extract(&img);
        assert_eq!(sim.features, reference);
        // Timing reflects the smaller image (< VGA latency).
        assert!(sim.timing.total_ms() < 9.1);
        assert!(sim.timing.total.0 > 0);
    }
}
