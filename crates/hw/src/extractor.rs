//! Timing and functional model of the ORB Extractor (Fig. 4).
//!
//! The extractor is a streaming design: pixels flow through FAST/Harris,
//! NMS, the smoother and the descriptor units at one pixel per cycle,
//! fed by the 3-line ping-pong Image Cache. The timing model charges:
//!
//! * 1 cycle per pyramid pixel (the paper's Image Resizing module
//!   generates the next layer *while* the current one is processed, so
//!   resizing adds no serial time);
//! * a per-row overhead (AXI burst setup and cache-line turnaround);
//! * a cache pre-fill of 16 columns per level (Fig. 5 initialization);
//! * per-candidate stalls in the orientation/BRIEF units (II = 4);
//! * heap drain and AXI write-back of the kept features.
//!
//! For the **original (non-rescheduled) workflow** ablation (§3.1), the
//! descriptor phase cannot overlap detection, and the smoothened frame no
//! longer fits on-chip — every kept keypoint pays an SDRAM patch fetch.
//!
//! Functional results delegate to [`eslam_features::orb::OrbExtractor`],
//! making the simulator's features bit-identical to the software
//! reference by construction (verified end-to-end in `tests/`).

use crate::axi::AxiConfig;
use crate::clock::{Cycles, FPGA_CLOCK_HZ};
use eslam_features::orb::{DescriptorKind, OrbConfig, OrbExtractor, OrbFeatures, Workflow};
use eslam_image::pyramid::PyramidConfig;
use eslam_image::GrayImage;

/// Bytes stored per extracted feature (256-bit descriptor + coordinates,
/// level, score).
pub const FEATURE_RECORD_BYTES: u64 = 40;

/// Per-level image dimensions of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelDims {
    /// Level width in pixels.
    pub width: u32,
    /// Level height in pixels.
    pub height: u32,
}

/// A workload description: what the extractor has to chew through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractionWorkload {
    /// Pyramid level dimensions (base first).
    pub levels: Vec<LevelDims>,
    /// NMS-surviving candidate keypoints (the paper's M).
    pub candidates: u64,
    /// Features kept by the Heap (the paper's N ≤ 1024).
    pub kept: u64,
}

impl ExtractionWorkload {
    /// The nominal paper workload: VGA input, 4-level ×1.2 pyramid,
    /// ~2500 candidates filtered to 1024 features (see DESIGN.md).
    pub fn vga_nominal() -> Self {
        ExtractionWorkload::from_pyramid(640, 480, &PyramidConfig::default(), 2500, 1024)
    }

    /// Builds a workload from base dimensions and a pyramid config.
    pub fn from_pyramid(
        width: u32,
        height: u32,
        config: &PyramidConfig,
        candidates: u64,
        kept: u64,
    ) -> Self {
        let levels = (0..config.levels)
            .map(|l| {
                let s = config.scale_of(l);
                LevelDims {
                    width: ((width as f64) / s).round().max(1.0) as u32,
                    height: ((height as f64) / s).round().max(1.0) as u32,
                }
            })
            .collect();
        ExtractionWorkload {
            levels,
            candidates,
            kept,
        }
    }

    /// Total pixels across all levels.
    pub fn total_pixels(&self) -> u64 {
        self.levels
            .iter()
            .map(|l| l.width as u64 * l.height as u64)
            .sum()
    }

    /// Total rows across all levels.
    pub fn total_rows(&self) -> u64 {
        self.levels.iter().map(|l| l.height as u64).sum()
    }
}

/// Calibrated timing parameters of the extractor datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtractorModel {
    /// AXI configuration for SDRAM traffic.
    pub axi: AxiConfig,
    /// Non-overlapped cycles per image row (burst address setup, cache
    /// line turnaround).
    pub row_overhead: u32,
    /// Columns pre-filled before processing starts (Fig. 5: 16).
    pub prefill_columns: u32,
    /// Extra cycles each NMS-surviving candidate occupies the
    /// orientation/BRIEF units beyond the pixel stream (II = 4).
    pub candidate_ii: u32,
    /// Heap drain cycles per kept feature.
    pub heap_drain_ii: u32,
    /// Pipeline flush cycles per level.
    pub level_flush: u32,
    /// SDRAM patch-fetch cycles per keypoint in the *original* workflow
    /// (31 rows of a 31-pixel patch: 31 bursts of 4 beats + setup).
    pub patch_fetch_cycles: u32,
}

impl Default for ExtractorModel {
    fn default() -> Self {
        ExtractorModel {
            axi: AxiConfig::default(),
            row_overhead: 64,
            prefill_columns: 16,
            candidate_ii: 4,
            heap_drain_ii: 2,
            level_flush: 50,
            patch_fetch_cycles: 372,
        }
    }
}

/// Cycle breakdown of one extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExtractionTiming {
    /// Streaming pixel cycles (1 px/cycle).
    pub pixel_cycles: Cycles,
    /// Per-row overhead cycles.
    pub row_overhead_cycles: Cycles,
    /// Cache pre-fill cycles.
    pub prefill_cycles: Cycles,
    /// Candidate-induced stall cycles.
    pub candidate_cycles: Cycles,
    /// Descriptor-phase cycles (original workflow only).
    pub descriptor_phase_cycles: Cycles,
    /// Heap drain cycles.
    pub drain_cycles: Cycles,
    /// AXI write-back cycles for the feature records.
    pub writeback_cycles: Cycles,
    /// Pipeline flush cycles.
    pub flush_cycles: Cycles,
    /// Grand total.
    pub total: Cycles,
}

impl ExtractionTiming {
    /// Total latency in milliseconds at the FPGA clock.
    pub fn total_ms(&self) -> f64 {
        self.total.to_millis(FPGA_CLOCK_HZ)
    }
}

/// On-chip memory requirement of a workflow, in bits (the §3.1 memory
/// argument for rescheduling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Streaming-cache bits (Image + Score + Smoothened caches).
    pub streaming_bits: u64,
    /// Additional frame-buffer bits the workflow needs on-chip (0 for the
    /// rescheduled workflow; the original workflow must either buffer the
    /// smoothened frame or spill it to SDRAM).
    pub buffer_bits: u64,
}

impl ExtractorModel {
    /// Computes the extraction latency for a workload under the given
    /// workflow schedule.
    // Timing fields are filled stage by stage, mirroring the datapath.
    #[allow(clippy::field_reassign_with_default)]
    pub fn extraction_timing(
        &self,
        workload: &ExtractionWorkload,
        workflow: Workflow,
    ) -> ExtractionTiming {
        let mut t = ExtractionTiming::default();
        t.pixel_cycles = Cycles(workload.total_pixels());
        t.row_overhead_cycles = Cycles(workload.total_rows() * self.row_overhead as u64);
        t.prefill_cycles = Cycles(
            workload
                .levels
                .iter()
                .map(|l| self.prefill_columns as u64 * l.height as u64)
                .sum(),
        );
        t.flush_cycles = Cycles(workload.levels.len() as u64 * self.level_flush as u64);
        t.drain_cycles = Cycles(workload.kept * self.heap_drain_ii as u64);
        t.writeback_cycles = self
            .axi
            .transfer_cycles(workload.kept * FEATURE_RECORD_BYTES);

        match workflow {
            Workflow::Rescheduled => {
                // Descriptors computed inline; candidates stall the
                // keypoint sub-pipeline only.
                t.candidate_cycles = Cycles(workload.candidates * self.candidate_ii as u64);
                t.descriptor_phase_cycles = Cycles::ZERO;
            }
            Workflow::Original => {
                // Detection still streams (orientation idle), then a
                // serial descriptor phase over the kept features, each
                // paying an SDRAM patch fetch because the smoothened
                // frame exceeds on-chip capacity.
                t.candidate_cycles = Cycles::ZERO;
                t.descriptor_phase_cycles = Cycles(
                    workload.kept * (self.patch_fetch_cycles as u64 + self.candidate_ii as u64),
                );
            }
        }

        t.total = t.pixel_cycles
            + t.row_overhead_cycles
            + t.prefill_cycles
            + t.candidate_cycles
            + t.descriptor_phase_cycles
            + t.drain_cycles
            + t.writeback_cycles
            + t.flush_cycles;
        t
    }

    /// On-chip memory footprint of a workflow for a base image width
    /// (heights from the workload's level 0).
    pub fn memory_footprint(
        &self,
        workload: &ExtractionWorkload,
        workflow: Workflow,
    ) -> MemoryFootprint {
        let base = workload.levels[0];
        let sizing = crate::cache::CacheSizing {
            image_height: base.height,
            ..Default::default()
        };
        let streaming = sizing.total_bits();
        let buffer = match workflow {
            Workflow::Rescheduled => 0,
            // The original workflow must keep the smoothened pyramid
            // addressable for the post-filter descriptor phase.
            Workflow::Original => workload.total_pixels() * 8,
        };
        MemoryFootprint {
            streaming_bits: streaming,
            buffer_bits: buffer,
        }
    }
}

/// Result of a functional + timed extraction run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedExtraction {
    /// The extracted features (bit-identical to the software reference).
    pub features: OrbFeatures,
    /// The modelled hardware latency.
    pub timing: ExtractionTiming,
}

/// Runs the hardware extractor on an image: functional results from the
/// bit-exact reference datapath, timing from the cycle model using the
/// *actual* candidate/kept counts of this image.
pub fn simulate_extraction(image: &GrayImage, model: &ExtractorModel) -> SimulatedExtraction {
    let config = OrbConfig {
        descriptor: DescriptorKind::RsBrief,
        workflow: Workflow::Rescheduled,
        ..Default::default()
    };
    let extractor = OrbExtractor::new(config);
    let features = extractor.extract(image);
    let workload = ExtractionWorkload::from_pyramid(
        image.width(),
        image.height(),
        &config.pyramid,
        features.stats.candidates as u64,
        features.stats.kept as u64,
    );
    let timing = model.extraction_timing(&workload, Workflow::Rescheduled);
    SimulatedExtraction { features, timing }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vga_nominal_matches_table2_fe_latency() {
        // Table 2: feature extraction on eSLAM takes 9.1 ms.
        let model = ExtractorModel::default();
        let timing =
            model.extraction_timing(&ExtractionWorkload::vga_nominal(), Workflow::Rescheduled);
        let ms = timing.total_ms();
        assert!(
            (ms - 9.1).abs() < 0.1,
            "FE latency {ms:.3} ms should be ≈ 9.1 ms"
        );
    }

    #[test]
    fn workload_pixel_counts() {
        let w = ExtractionWorkload::vga_nominal();
        assert_eq!(w.levels.len(), 4);
        assert_eq!(
            w.levels[0],
            LevelDims {
                width: 640,
                height: 480
            }
        );
        assert_eq!(
            w.levels[1],
            LevelDims {
                width: 533,
                height: 400
            }
        );
        // 640×480 + 533×400 + 444×333 + 370×278 = 771,112.
        assert_eq!(w.total_pixels(), 771_112);
        assert_eq!(w.total_rows(), 1491);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let model = ExtractorModel::default();
        for workflow in [Workflow::Rescheduled, Workflow::Original] {
            let t = model.extraction_timing(&ExtractionWorkload::vga_nominal(), workflow);
            let sum = t.pixel_cycles
                + t.row_overhead_cycles
                + t.prefill_cycles
                + t.candidate_cycles
                + t.descriptor_phase_cycles
                + t.drain_cycles
                + t.writeback_cycles
                + t.flush_cycles;
            assert_eq!(sum, t.total);
        }
    }

    #[test]
    fn rescheduling_reduces_latency() {
        // §3.1: "the latency has been optimized significantly due to the
        // eliminated idle states".
        let model = ExtractorModel::default();
        let w = ExtractionWorkload::vga_nominal();
        let rescheduled = model.extraction_timing(&w, Workflow::Rescheduled);
        let original = model.extraction_timing(&w, Workflow::Original);
        assert!(original.total > rescheduled.total);
        let saving = 1.0 - rescheduled.total.0 as f64 / original.total.0 as f64;
        assert!(
            (0.15..0.45).contains(&saving),
            "latency saving {saving:.2} out of expected band"
        );
    }

    #[test]
    fn rescheduling_eliminates_frame_buffer() {
        // §3.1: "the required on-chip cache is also reduced dramatically".
        let model = ExtractorModel::default();
        let w = ExtractionWorkload::vga_nominal();
        let resched = model.memory_footprint(&w, Workflow::Rescheduled);
        let orig = model.memory_footprint(&w, Workflow::Original);
        assert_eq!(resched.buffer_bits, 0);
        assert!(orig.buffer_bits > 10 * resched.streaming_bits);
    }

    #[test]
    fn more_candidates_cost_more_cycles() {
        let model = ExtractorModel::default();
        let mut light = ExtractionWorkload::vga_nominal();
        light.candidates = 500;
        let mut heavy = ExtractionWorkload::vga_nominal();
        heavy.candidates = 5000;
        let tl = model.extraction_timing(&light, Workflow::Rescheduled);
        let th = model.extraction_timing(&heavy, Workflow::Rescheduled);
        assert!(th.total > tl.total);
        assert_eq!(th.total.0 - tl.total.0, 4500 * 4);
    }

    #[test]
    fn two_level_pyramid_pixel_ratio_matches_48_percent() {
        // §4.4 cross-check: 4 levels process 48% more pixels than 2.
        let four = ExtractionWorkload::from_pyramid(640, 480, &PyramidConfig::default(), 0, 0);
        let two = ExtractionWorkload::from_pyramid(
            640,
            480,
            &PyramidConfig {
                levels: 2,
                scale_factor: 1.2,
            },
            0,
            0,
        );
        let ratio = four.total_pixels() as f64 / two.total_pixels() as f64;
        assert!((ratio - 1.48).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn simulate_extraction_consistent_with_software() {
        let img = GrayImage::from_fn(160, 120, |x, y| {
            let base = if (x / 10 + y / 10) % 2 == 0 { 60 } else { 190 };
            base + ((x * 7 + y * 13) % 17) as u8
        });
        let sim = simulate_extraction(&img, &ExtractorModel::default());
        // Functional equality with the reference extractor.
        let reference = OrbExtractor::new(OrbConfig::default()).extract(&img);
        assert_eq!(sim.features, reference);
        // Timing reflects the smaller image (< VGA latency).
        assert!(sim.timing.total_ms() < 9.1);
        assert!(sim.timing.total.0 > 0);
    }
}
