//! Lock-free log-bucketed latency histogram (HDR-style).
//!
//! The layout is log-linear: each power-of-two octave of the nanosecond
//! range is split into [`SUBS`] equal linear sub-buckets, giving a
//! bounded **relative** quantile error of `1 / SUBS` (12.5%) across the
//! whole tracked range — the classic HDR-histogram trade of a few
//! hundred bytes for percentile fidelity at any magnitude. The tracked
//! range spans [`MIN_TRACKED_NS`] (≈1 µs) to [`MAX_TRACKED_NS`]
//! (≈67 ms) in exactly [`BUCKETS`] = 128 fixed buckets; one underflow
//! and one overflow bucket catch the tails (the exact maximum is kept
//! separately, so a saturated p99 still reports a faithful max).
//!
//! Everything is `AtomicU64` with relaxed ordering: recording from any
//! number of threads is wait-free (one `fetch_add` per counter touched)
//! and histograms [`LogHistogram::merge_from`] associatively — the
//! property tests in this module's suite pin both the error bound and
//! merge associativity.

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the linear sub-buckets per octave.
pub const SUB_BITS: u32 = 3;
/// Linear sub-buckets per power-of-two octave (8 → ≤12.5% rel. error).
pub const SUBS: usize = 1 << SUB_BITS;
/// Exponent of the smallest tracked value: 2^10 ns = 1.024 µs.
pub const MIN_EXP: u32 = 10;
/// Number of power-of-two octaves tracked.
pub const OCTAVES: u32 = 16;
/// Log-linear buckets in the tracked range (the fixed "~128" layout).
pub const BUCKETS: usize = OCTAVES as usize * SUBS;
/// Total slots: underflow + tracked buckets + overflow.
pub const SLOTS: usize = BUCKETS + 2;
/// Smallest value (ns) resolved by the log-linear range.
pub const MIN_TRACKED_NS: u64 = 1 << MIN_EXP;
/// First value (ns) past the log-linear range (falls in overflow).
pub const MAX_TRACKED_NS: u64 = 1 << (MIN_EXP + OCTAVES);

/// A mergeable, lock-free latency histogram over nanosecond values.
pub struct LogHistogram {
    buckets: [AtomicU64; SLOTS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count())
            .field("sum_ns", &self.sum_ns())
            .field("max_ns", &self.max_ns())
            .finish_non_exhaustive()
    }
}

/// Slot index for a nanosecond value. Slot 0 is underflow
/// (`v < MIN_TRACKED_NS`), slot `SLOTS - 1` overflow.
#[inline]
pub fn slot_of(v: u64) -> usize {
    if v < MIN_TRACKED_NS {
        return 0;
    }
    let exp = 63 - v.leading_zeros();
    if exp >= MIN_EXP + OCTAVES {
        return SLOTS - 1;
    }
    let sub = (v >> (exp - SUB_BITS)) as usize & (SUBS - 1);
    1 + (exp - MIN_EXP) as usize * SUBS + sub
}

/// Inclusive lower bound (ns) of a slot.
pub fn slot_lower_ns(slot: usize) -> u64 {
    debug_assert!(slot < SLOTS);
    if slot == 0 {
        return 0;
    }
    if slot == SLOTS - 1 {
        return MAX_TRACKED_NS;
    }
    let idx = slot - 1;
    let exp = MIN_EXP + (idx / SUBS) as u32;
    let sub = (idx % SUBS) as u64;
    (1u64 << exp) + sub * (1u64 << (exp - SUB_BITS))
}

/// Exclusive upper bound (ns) of a slot (`u64::MAX` for overflow).
pub fn slot_upper_ns(slot: usize) -> u64 {
    debug_assert!(slot < SLOTS);
    if slot == SLOTS - 1 {
        return u64::MAX;
    }
    slot_lower_ns(slot + 1)
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one nanosecond value. Wait-free; callable from any
    /// thread concurrently.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.buckets[slot_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values, ns.
    pub fn sum_ns(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum recorded value, ns (0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded values, ns (0.0 when empty).
    pub fn mean_ns(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum_ns() as f64 / count as f64
        }
    }

    /// Folds `other`'s recordings into `self`. Addition of per-bucket
    /// counts, so merging is associative and commutative — worker
    /// threads can keep private histograms and fold them in any order.
    pub fn merge_from(&self, other: &LogHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy for reporting. (Buckets
    /// are loaded one by one; concurrent recording can make the copy
    /// off by in-flight samples — reporting runs after the measured
    /// section, where that slack is zero.)
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count(),
            sum_ns: self.sum_ns(),
            max_ns: self.max_ns(),
        }
    }

    /// The value (ns) at quantile `q` in `[0, 1]`, or `None` when
    /// empty. See [`HistogramSnapshot::quantile_ns`] for the estimate's
    /// error bound.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        self.snapshot().quantile_ns(q)
    }
}

/// A plain (non-atomic) copy of a [`LogHistogram`]'s state.
#[derive(Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-slot counts (underflow, tracked buckets, overflow).
    pub buckets: [u64; SLOTS],
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values, ns.
    pub sum_ns: u64,
    /// Exact maximum recorded value, ns.
    pub max_ns: u64,
}

impl std::fmt::Debug for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramSnapshot")
            .field("count", &self.count)
            .field("sum_ns", &self.sum_ns)
            .field("max_ns", &self.max_ns)
            .finish_non_exhaustive()
    }
}

impl HistogramSnapshot {
    /// The value (ns) at quantile `q` in `[0, 1]`, or `None` when
    /// empty.
    ///
    /// The estimate is the midpoint of the bucket holding the rank-`q`
    /// sample, so for values inside the tracked range the relative
    /// error is bounded by half a bucket width: `1 / (2 · SUBS)`
    /// ≈ 6.25%, and never worse than a full width (12.5%) against any
    /// sample in the bucket. Underflow reports the midpoint of
    /// `[0, MIN_TRACKED_NS)`; overflow reports the exact tracked max.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (slot, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                if slot == SLOTS - 1 {
                    return Some(self.max_ns);
                }
                let lo = slot_lower_ns(slot);
                let hi = slot_upper_ns(slot);
                // Clamped to the exact tracked max so the quantile
                // sequence never overshoots it (a top-bucket midpoint
                // otherwise can).
                return Some((lo + (hi - lo) / 2).min(self.max_ns));
            }
        }
        // count > 0 guarantees the walk finds the rank.
        unreachable!("histogram count/bucket mismatch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn layout_is_the_documented_128_buckets() {
        assert_eq!(BUCKETS, 128);
        assert_eq!(SLOTS, 130);
        assert_eq!(MIN_TRACKED_NS, 1_024);
        assert_eq!(MAX_TRACKED_NS, 67_108_864); // ≈ 67 ms
    }

    #[test]
    fn slot_bounds_tile_the_range() {
        // Buckets are contiguous, monotone and self-consistent: every
        // slot's values map back to it.
        for slot in 0..SLOTS - 1 {
            assert_eq!(slot_upper_ns(slot), slot_lower_ns(slot + 1), "slot {slot}");
            let lo = slot_lower_ns(slot);
            let hi = slot_upper_ns(slot);
            assert!(lo < hi, "slot {slot}");
            assert_eq!(slot_of(lo), slot, "lower bound of slot {slot}");
            assert_eq!(slot_of(hi - 1), slot, "last value of slot {slot}");
        }
        assert_eq!(slot_of(MAX_TRACKED_NS), SLOTS - 1);
        assert_eq!(slot_of(u64::MAX), SLOTS - 1);
    }

    #[test]
    fn empty_histogram_reports_nothing() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.quantile_ns(0.5), None);
    }

    #[test]
    fn single_value_quantiles_hit_its_bucket() {
        let h = LogHistogram::new();
        h.record(5_000_000); // 5 ms
        for q in [0.0, 0.5, 0.99, 1.0] {
            let est = h.quantile_ns(q).unwrap() as f64;
            assert!((est - 5e6).abs() <= 5e6 / 8.0, "q={q} est={est}");
        }
        assert_eq!(h.max_ns(), 5_000_000);
    }

    #[test]
    fn overflow_quantile_reports_exact_max() {
        let h = LogHistogram::new();
        h.record(3 * MAX_TRACKED_NS);
        assert_eq!(h.quantile_ns(0.5), Some(3 * MAX_TRACKED_NS));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LogHistogram::new());
        let threads = 4;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        h.record(1_000 + t * 37 + i * 13);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.count(), threads * per_thread);
        let bucket_total: u64 = h.snapshot().buckets.iter().sum();
        assert_eq!(bucket_total, threads * per_thread);
    }

    proptest! {
        #[test]
        fn quantile_error_is_bounded(values in proptest::collection::vec(MIN_TRACKED_NS..MAX_TRACKED_NS, 1..200)) {
            // For in-range data, any quantile estimate must land within
            // one bucket width (≤ 12.5% relative) of an actual sample
            // at that rank.
            let h = LogHistogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                let truth = sorted[rank - 1] as f64;
                let est = h.quantile_ns(q).unwrap() as f64;
                let bound = truth / SUBS as f64;
                prop_assert!(
                    (est - truth).abs() <= bound,
                    "q={} truth={} est={} bound={}", q, truth, est, bound
                );
            }
        }

        #[test]
        fn merge_is_associative_and_commutative(
            a in proptest::collection::vec(0u64..(4 * MAX_TRACKED_NS), 0..100),
            b in proptest::collection::vec(0u64..(4 * MAX_TRACKED_NS), 0..100),
            c in proptest::collection::vec(0u64..(4 * MAX_TRACKED_NS), 0..100),
        ) {
            let fill = |values: &[u64]| {
                let h = LogHistogram::new();
                for &v in values {
                    h.record(v);
                }
                h
            };
            // (a ⊕ b) ⊕ c
            let left = fill(&a);
            left.merge_from(&fill(&b));
            left.merge_from(&fill(&c));
            // a ⊕ (b ⊕ c)
            let bc = fill(&b);
            bc.merge_from(&fill(&c));
            let right = fill(&a);
            right.merge_from(&bc);
            prop_assert_eq!(left.snapshot(), right.snapshot());
            // c ⊕ b ⊕ a (commuted)
            let commuted = fill(&c);
            commuted.merge_from(&fill(&b));
            commuted.merge_from(&fill(&a));
            prop_assert_eq!(left.snapshot(), commuted.snapshot());
        }

        #[test]
        fn merge_equals_recording_everything_into_one(
            a in proptest::collection::vec(0u64..(4 * MAX_TRACKED_NS), 0..100),
            b in proptest::collection::vec(0u64..(4 * MAX_TRACKED_NS), 0..100),
        ) {
            let ha = LogHistogram::new();
            for &v in &a {
                ha.record(v);
            }
            let hb = LogHistogram::new();
            for &v in &b {
                hb.record(v);
            }
            ha.merge_from(&hb);
            let all = LogHistogram::new();
            for &v in a.iter().chain(&b) {
                all.record(v);
            }
            prop_assert_eq!(ha.snapshot(), all.snapshot());
        }
    }
}
