//! Bounded in-memory span buffer and its Chrome `trace_event` export.
//!
//! Every recorded span becomes one complete duration event (`ph:"X"`)
//! with microsecond timestamps relative to the sink's epoch. The JSON
//! document loads directly in Perfetto or `chrome://tracing`;
//! overlapping events on the same thread track nest automatically.

use crate::Stage;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

/// Process-wide dense thread ids: Chrome traces want small integer
/// `tid`s, and `std::thread::ThreadId` has no stable integer form.
static NEXT_TID: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static TID: u32 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

fn current_tid() -> u32 {
    TID.with(|t| *t)
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum EventKind {
    Stage(Stage),
    /// Whole-frame window; the payload is the frame index.
    Frame(u64),
}

#[derive(Debug, Clone, Copy)]
struct RawEvent {
    kind: EventKind,
    start_ns: u64,
    dur_ns: u64,
    tid: u32,
}

#[derive(Debug)]
pub(crate) struct TraceBuffer {
    events: Mutex<Vec<RawEvent>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl TraceBuffer {
    pub(crate) fn new(capacity: usize) -> TraceBuffer {
        TraceBuffer {
            // Grow lazily: short runs should not pay a 65k-slot table.
            events: Mutex::new(Vec::new()),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }

    pub(crate) fn push(&self, kind: EventKind, start_ns: u64, dur_ns: u64) {
        if self.capacity == 0 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let tid = current_tid();
        let mut events = self.events.lock().expect("trace buffer poisoned");
        if events.len() >= self.capacity {
            drop(events);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(RawEvent {
            kind,
            start_ns,
            dur_ns,
            tid,
        });
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Serializes the buffer as a Chrome `trace_event` JSON document.
    pub(crate) fn chrome_json(&self, frames: u64) -> String {
        let events = self.events.lock().expect("trace buffer poisoned");
        let mut out = String::with_capacity(64 + events.len() * 96);
        out.push_str("{\"traceEvents\":[\n");
        out.push_str(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"eslam\"}}",
        );
        let mut tids: Vec<u32> = events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in &tids {
            let _ = write!(
                out,
                ",\n{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"thread-{tid}\"}}}}"
            );
        }
        for event in events.iter() {
            let ts = event.start_ns as f64 / 1e3;
            let dur = event.dur_ns as f64 / 1e3;
            match event.kind {
                EventKind::Stage(stage) => {
                    let _ = write!(
                        out,
                        ",\n{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":\"{}\",\
                         \"cat\":\"eslam\",\"ts\":{ts:.3},\"dur\":{dur:.3}}}",
                        event.tid,
                        stage.name()
                    );
                }
                EventKind::Frame(index) => {
                    let _ = write!(
                        out,
                        ",\n{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":\"frame\",\
                         \"cat\":\"eslam\",\"ts\":{ts:.3},\"dur\":{dur:.3},\
                         \"args\":{{\"frame\":{index}}}}}",
                        event.tid
                    );
                }
            }
        }
        let dropped = self.dropped();
        let _ = write!(
            out,
            "\n],\"displayTimeUnit\":\"ms\",\
             \"otherData\":{{\"frames\":{frames},\"droppedEvents\":{dropped}}}}}"
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_caps_and_counts_drops() {
        let buf = TraceBuffer::new(2);
        for i in 0..5 {
            buf.push(EventKind::Stage(Stage::Matching), i * 1000, 500);
        }
        assert_eq!(buf.dropped(), 3);
        let json = buf.chrome_json(0);
        assert_eq!(json.matches("\"matching\"").count(), 2, "{json}");
        assert!(json.contains("\"droppedEvents\":3"), "{json}");
    }

    #[test]
    fn chrome_json_is_structurally_sound() {
        let buf = TraceBuffer::new(16);
        buf.push(EventKind::Frame(7), 0, 2_000_000);
        buf.push(EventKind::Stage(Stage::Extraction), 100_000, 900_000);
        let json = buf.chrome_json(1);
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.ends_with('}'), "{json}");
        // Balanced braces and brackets (no serde available to parse).
        let braces = json.matches('{').count() as i64 - json.matches('}').count() as i64;
        let brackets = json.matches('[').count() as i64 - json.matches(']').count() as i64;
        assert_eq!(braces, 0);
        assert_eq!(brackets, 0);
        assert!(json.contains("\"name\":\"frame\""), "{json}");
        assert!(json.contains("\"args\":{\"frame\":7}"), "{json}");
        // µs conversion: 100_000 ns start → ts 100.000.
        assert!(json.contains("\"ts\":100.000"), "{json}");
        assert!(json.contains("\"name\":\"process_name\""), "{json}");
        assert!(json.contains("\"name\":\"thread_name\""), "{json}");
    }

    #[test]
    fn threads_get_distinct_small_tids() {
        let buf = std::sync::Arc::new(TraceBuffer::new(16));
        let b = buf.clone();
        buf.push(EventKind::Stage(Stage::Matching), 0, 1);
        std::thread::spawn(move || {
            b.push(EventKind::Stage(Stage::ExtractLevel), 10, 1);
        })
        .join()
        .unwrap();
        let events = buf.events.lock().unwrap();
        assert_eq!(events.len(), 2);
        assert_ne!(events[0].tid, events[1].tid);
    }
}
