//! The flight recorder: a bounded ring of recent per-frame stage
//! timelines, plus a pinned copy of the most recent over-budget frame.

use crate::Stage;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// One frame's recorded timeline: where its wall-clock went, stage by
/// stage. Produced by [`Telemetry::frame_end`](crate::Telemetry::frame_end)
/// in full mode.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameTimeline {
    /// Sequence index of the frame within the run.
    pub index: u64,
    /// Dataset timestamp of the frame (seconds).
    pub timestamp: f64,
    /// Total tracking wall time for the frame in milliseconds.
    pub total_ms: f64,
    /// Whether the frame exceeded
    /// [`TelemetryConfig::frame_budget_ms`](crate::TelemetryConfig::frame_budget_ms).
    pub over_budget: bool,
    /// Nanoseconds attributed to each stage during this frame's
    /// window, indexed by [`Stage::index`].
    pub stage_ns: [u64; Stage::COUNT],
}

impl FrameTimeline {
    /// Milliseconds attributed to `stage` during this frame.
    pub fn stage_ms(&self, stage: Stage) -> f64 {
        self.stage_ns[stage.index()] as f64 / 1e6
    }

    /// One-line description listing the frame's nonzero stages,
    /// slowest first.
    pub fn describe(&self) -> String {
        let mut stages: Vec<(Stage, u64)> = Stage::ALL
            .iter()
            .map(|&s| (s, self.stage_ns[s.index()]))
            .filter(|&(s, ns)| ns > 0 && s != Stage::Track)
            .collect();
        stages.sort_by_key(|&(_, ns)| std::cmp::Reverse(ns));
        let mut line = format!(
            "frame {} (t={:.3}s) {:.2} ms{}",
            self.index,
            self.timestamp,
            self.total_ms,
            if self.over_budget { " OVER BUDGET" } else { "" }
        );
        for (stage, ns) in stages {
            let _ = write!(line, " {}={:.2}ms", stage.name(), ns as f64 / 1e6);
        }
        line
    }
}

/// Bounded ring of the last N frame timelines.
#[derive(Debug)]
pub(crate) struct FlightRecorder {
    ring: VecDeque<FrameTimeline>,
    capacity: usize,
    last_over_budget: Option<FrameTimeline>,
}

impl FlightRecorder {
    pub(crate) fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            last_over_budget: None,
        }
    }

    pub(crate) fn push(&mut self, timeline: FrameTimeline) {
        if timeline.over_budget {
            self.last_over_budget = Some(timeline.clone());
        }
        if self.capacity == 0 {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(timeline);
    }

    pub(crate) fn timelines(&self) -> Vec<FrameTimeline> {
        self.ring.iter().cloned().collect()
    }

    pub(crate) fn last_over_budget(&self) -> Option<FrameTimeline> {
        self.last_over_budget.clone()
    }

    pub(crate) fn dump(&self) -> String {
        let mut out = format!("flight recorder: {} frame(s)\n", self.ring.len());
        for timeline in &self.ring {
            out.push_str("  ");
            out.push_str(&timeline.describe());
            out.push('\n');
        }
        if let Some(pinned) = &self.last_over_budget {
            out.push_str("last over-budget: ");
            out.push_str(&pinned.describe());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline(index: u64, over: bool) -> FrameTimeline {
        let mut stage_ns = [0u64; Stage::COUNT];
        stage_ns[Stage::Extraction.index()] = 2_000_000;
        stage_ns[Stage::Matching.index()] = 500_000;
        FrameTimeline {
            index,
            timestamp: index as f64 / 30.0,
            total_ms: 3.0,
            over_budget: over,
            stage_ns,
        }
    }

    #[test]
    fn ring_keeps_only_the_last_n() {
        let mut rec = FlightRecorder::new(3);
        for i in 0..10 {
            rec.push(timeline(i, false));
        }
        let kept = rec.timelines();
        assert_eq!(kept.len(), 3);
        assert_eq!(kept[0].index, 7);
        assert_eq!(kept[2].index, 9);
    }

    #[test]
    fn over_budget_frame_survives_ring_rotation() {
        let mut rec = FlightRecorder::new(2);
        rec.push(timeline(0, true));
        for i in 1..6 {
            rec.push(timeline(i, false));
        }
        assert!(rec.timelines().iter().all(|t| !t.over_budget));
        assert_eq!(rec.last_over_budget().unwrap().index, 0);
    }

    #[test]
    fn zero_capacity_still_pins_over_budget_frames() {
        let mut rec = FlightRecorder::new(0);
        rec.push(timeline(4, true));
        assert!(rec.timelines().is_empty());
        assert_eq!(rec.last_over_budget().unwrap().index, 4);
    }

    #[test]
    fn describe_lists_slowest_stage_first() {
        let line = timeline(2, true).describe();
        assert!(line.contains("frame 2"), "{line}");
        assert!(line.contains("OVER BUDGET"), "{line}");
        let extraction = line.find("extraction=").unwrap();
        let matching = line.find("matching=").unwrap();
        assert!(extraction < matching, "{line}");
    }

    #[test]
    fn dump_mentions_every_retained_frame() {
        let mut rec = FlightRecorder::new(4);
        rec.push(timeline(0, false));
        rec.push(timeline(1, false));
        let dump = rec.dump();
        assert!(dump.contains("2 frame(s)"), "{dump}");
        assert!(dump.contains("frame 0"), "{dump}");
        assert!(dump.contains("frame 1"), "{dump}");
    }
}
