//! **eslam-telemetry** — pipeline observability for the eSLAM
//! reproduction: tracing spans, per-stage latency histograms, monotonic
//! counters, a frame flight recorder, a diagnostic event layer, and
//! Prometheus / JSON / Chrome-`trace_event` exporters.
//!
//! # Design
//!
//! The whole layer hangs off one sink object, [`Telemetry`], created by
//! [`Telemetry::new`] and attached as an `Option<Arc<Telemetry>>` to
//! the long-lived pipeline objects (the SLAM system, extraction
//! scratch, backend runner, prefetcher). The three modes
//! ([`TelemetryMode`]):
//!
//! * **Off** — `Telemetry::new` returns `None`; there is no sink. The
//!   hot path's only residue is a branch on an `Option` that is `None`:
//!   no `Instant::now()` calls, no allocation, no locks, no atomics.
//! * **Counters** (the default) — monotonic [`Counter`]s increment
//!   (one relaxed `fetch_add` each); no timing is taken.
//! * **Full** — [`Span`]s additionally time every pipeline stage into
//!   lock-free log-bucketed histograms ([`hist::LogHistogram`]), feed
//!   the bounded flight-recorder ring of recent frame timelines
//!   ([`FrameTimeline`]), and append Chrome `trace_event` records for
//!   Perfetto. Span recording is wait-free except for one short
//!   uncontended mutex push per span into the bounded trace buffer.
//!
//! Telemetry **observes** and never steers: results are bit-identical
//! across all three modes (pinned by the workspace's telemetry
//! equivalence tier).
//!
//! # Examples
//!
//! ```
//! use eslam_telemetry::{Counter, Stage, Telemetry, TelemetryConfig, TelemetryMode};
//!
//! let mut config = TelemetryConfig::default();
//! config.mode = TelemetryMode::Full;
//! let telemetry = Telemetry::new(config).expect("full mode builds a sink");
//!
//! {
//!     let _span = telemetry.span(Stage::Extraction);
//!     // ... work ...
//! } // recorded on drop
//! telemetry.count(Counter::FramesProcessed, 1);
//!
//! let summary = telemetry.summary();
//! assert_eq!(summary.counter(Counter::FramesProcessed), 1);
//! assert!(summary.stage(Stage::Extraction).is_some());
//!
//! // Off mode has no sink at all:
//! assert!(Telemetry::new(TelemetryConfig::default().with_mode(TelemetryMode::Off)).is_none());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod events;
pub mod export;
pub mod hist;
mod recorder;
mod trace;

pub use export::{StageSummary, TelemetrySummary};
pub use recorder::FrameTimeline;

use hist::LogHistogram;
use recorder::FlightRecorder;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How much the telemetry layer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryMode {
    /// No sink is built; the hot path pays only a `None` branch.
    Off,
    /// Monotonic counters only — no clocks are read.
    #[default]
    Counters,
    /// Counters + per-stage histograms + flight recorder + trace.
    Full,
}

impl TelemetryMode {
    /// Parses the keyword spellings used by the `ESLAM_TELEMETRY`
    /// environment toggle (`off`, `counters`, `full`; the caller maps
    /// unset/`auto` to "no override" first).
    pub fn parse(value: &str) -> Option<TelemetryMode> {
        match value {
            "off" => Some(TelemetryMode::Off),
            "counters" => Some(TelemetryMode::Counters),
            "full" => Some(TelemetryMode::Full),
            _ => None,
        }
    }

    /// The keyword spelling of this mode.
    pub fn name(self) -> &'static str {
        match self {
            TelemetryMode::Off => "off",
            TelemetryMode::Counters => "counters",
            TelemetryMode::Full => "full",
        }
    }
}

impl std::fmt::Display for TelemetryMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of the telemetry layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// What to record (see [`TelemetryMode`]).
    pub mode: TelemetryMode,
    /// Per-frame wall-clock budget in milliseconds. A frame whose
    /// tracking time exceeds it bumps [`Counter::FramesOverBudget`]
    /// and (in full mode) pins its timeline as
    /// [`Telemetry::last_over_budget`] and raises a diagnostic
    /// [`events`] warning. `0.0` disables the check.
    pub frame_budget_ms: f64,
    /// Frame timelines kept in the flight-recorder ring (full mode).
    pub flight_frames: usize,
    /// Maximum Chrome `trace_event` records buffered (full mode);
    /// events past the cap are counted as dropped, not recorded.
    pub trace_events: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            mode: TelemetryMode::Counters,
            frame_budget_ms: 0.0,
            flight_frames: 32,
            trace_events: 65_536,
        }
    }
}

impl TelemetryConfig {
    /// Builder-style mode replacement.
    pub fn with_mode(mut self, mode: TelemetryMode) -> TelemetryConfig {
        self.mode = mode;
        self
    }
}

/// A pipeline stage instrumented with a span. One histogram per stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Caller blocked waiting for frame pixels (render/load/prefetch
    /// join).
    FrameWait,
    /// One whole `Slam::process` call (the five-stage tracking
    /// pipeline plus the backend application point).
    Track,
    /// Image-pyramid build (downscale chain) for one frame.
    PyramidBuild,
    /// One pyramid level's detect→describe pass (parallel per level).
    ExtractLevel,
    /// One row band's streaming pass under the band-parallel schedule
    /// (one span per (level, band) task; Perfetto worker tracks show
    /// the realized overlap).
    ExtractBand,
    /// The whole feature-extraction stage of one frame.
    Extraction,
    /// Time an extraction task waited in the worker-pool queue before a
    /// worker picked it up.
    PoolQueueWait,
    /// Dispatch + drain of one parallel extraction batch on the pool.
    PoolDispatch,
    /// Descriptor matching against the map.
    Matching,
    /// P3P + RANSAC pose estimation.
    PoseEstimate,
    /// Levenberg-Marquardt pose optimization.
    PoseOptimize,
    /// Keyframe promotion: observation wiring, map insertion, culling
    /// and backend hand-off.
    KeyframePromotion,
    /// One windowed local-BA solve (on whichever thread runs it).
    BackendSolve,
    /// Blocking join of a dispatched backend job at its application
    /// point.
    BackendJoin,
    /// Place recognition (BoW observe/query) on the tracking thread.
    LoopDetect,
    /// Loop-candidate geometric verification + pose-graph solve.
    LoopVerify,
    /// Atlas snapshot build + publish at the end of a run.
    AtlasPublish,
    /// One background prefetch render of a frame.
    PrefetchRender,
}

impl Stage {
    /// Number of stages (array dimension for per-stage state).
    pub const COUNT: usize = 18;

    /// Every stage, in declaration order (index == discriminant).
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::FrameWait,
        Stage::Track,
        Stage::PyramidBuild,
        Stage::ExtractLevel,
        Stage::ExtractBand,
        Stage::Extraction,
        Stage::PoolQueueWait,
        Stage::PoolDispatch,
        Stage::Matching,
        Stage::PoseEstimate,
        Stage::PoseOptimize,
        Stage::KeyframePromotion,
        Stage::BackendSolve,
        Stage::BackendJoin,
        Stage::LoopDetect,
        Stage::LoopVerify,
        Stage::AtlasPublish,
        Stage::PrefetchRender,
    ];

    /// Stable metric name (snake_case; used by every exporter).
    pub fn name(self) -> &'static str {
        match self {
            Stage::FrameWait => "frame_wait",
            Stage::Track => "track",
            Stage::PyramidBuild => "pyramid_build",
            Stage::ExtractLevel => "extract_level",
            Stage::ExtractBand => "extract_band",
            Stage::Extraction => "extraction",
            Stage::PoolQueueWait => "pool_queue_wait",
            Stage::PoolDispatch => "pool_dispatch",
            Stage::Matching => "matching",
            Stage::PoseEstimate => "pose_estimate",
            Stage::PoseOptimize => "pose_optimize",
            Stage::KeyframePromotion => "keyframe_promotion",
            Stage::BackendSolve => "backend_solve",
            Stage::BackendJoin => "backend_join",
            Stage::LoopDetect => "loop_detect",
            Stage::LoopVerify => "loop_verify",
            Stage::AtlasPublish => "atlas_publish",
            Stage::PrefetchRender => "prefetch_render",
        }
    }

    /// Dense index into per-stage arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A monotonic pipeline counter (active in counters and full mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Frames processed end-to-end.
    FramesProcessed,
    /// Frames promoted to keyframes.
    KeyframesPromoted,
    /// Map points removed by age/capacity culling.
    LandmarksCulled,
    /// Loop-closure candidates that passed the place-recognition gate
    /// and were dispatched for verification.
    LoopCandidates,
    /// Verified loop closures accepted and applied.
    LoopClosuresAccepted,
    /// Loop candidates rejected by geometric verification.
    LoopClosuresRejected,
    /// Relocalization attempts (recovery retries + cold starts).
    RelocAttempts,
    /// Relocalization attempts that produced an accepted pose.
    RelocSuccesses,
    /// Geometric inlier correspondences accumulated over all frames.
    MatchInliers,
    /// Raw descriptor matches accumulated over all frames.
    RawMatches,
    /// Frames that failed the tracking inlier threshold (after any
    /// recovery retry).
    TrackingFailures,
    /// Frames whose tracking time exceeded
    /// [`TelemetryConfig::frame_budget_ms`].
    FramesOverBudget,
}

impl Counter {
    /// Number of counters (array dimension).
    pub const COUNT: usize = 12;

    /// Every counter, in declaration order (index == discriminant).
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::FramesProcessed,
        Counter::KeyframesPromoted,
        Counter::LandmarksCulled,
        Counter::LoopCandidates,
        Counter::LoopClosuresAccepted,
        Counter::LoopClosuresRejected,
        Counter::RelocAttempts,
        Counter::RelocSuccesses,
        Counter::MatchInliers,
        Counter::RawMatches,
        Counter::TrackingFailures,
        Counter::FramesOverBudget,
    ];

    /// Stable metric name (snake_case; used by every exporter).
    pub fn name(self) -> &'static str {
        match self {
            Counter::FramesProcessed => "frames_processed",
            Counter::KeyframesPromoted => "keyframes_promoted",
            Counter::LandmarksCulled => "landmarks_culled",
            Counter::LoopCandidates => "loop_candidates",
            Counter::LoopClosuresAccepted => "loop_closures_accepted",
            Counter::LoopClosuresRejected => "loop_closures_rejected",
            Counter::RelocAttempts => "relocalization_attempts",
            Counter::RelocSuccesses => "relocalization_successes",
            Counter::MatchInliers => "match_inliers",
            Counter::RawMatches => "raw_matches",
            Counter::TrackingFailures => "tracking_failures",
            Counter::FramesOverBudget => "frames_over_budget",
        }
    }

    /// Dense index into per-counter arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// The telemetry sink: one per SLAM system, shared (via `Arc`) with
/// every pipeline object that records into it. See the [module
/// docs](self) for the mode semantics.
pub struct Telemetry {
    config: TelemetryConfig,
    /// Timestamp base of every trace event and frame window.
    epoch: Instant,
    histograms: [LogHistogram; Stage::COUNT],
    counters: [AtomicU64; Counter::COUNT],
    /// Current-frame per-stage accumulation (ns), swapped out at every
    /// [`Telemetry::frame_end`].
    frame_ns: [AtomicU64; Stage::COUNT],
    /// Current frame index / timestamp-bits / start offset (full mode).
    frame_index: AtomicU64,
    frame_timestamp_bits: AtomicU64,
    frame_start_ns: AtomicU64,
    recorder: Mutex<FlightRecorder>,
    trace: trace::TraceBuffer,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("config", &self.config)
            .field("frames", &self.counter(Counter::FramesProcessed))
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    /// Builds the sink for `config`, or `None` when the mode is
    /// [`TelemetryMode::Off`] — the absence of a sink **is** the off
    /// implementation, so disabled telemetry costs instrumented code
    /// exactly one `Option` branch.
    pub fn new(config: TelemetryConfig) -> Option<Arc<Telemetry>> {
        if config.mode == TelemetryMode::Off {
            return None;
        }
        Some(Arc::new(Telemetry {
            epoch: Instant::now(),
            histograms: std::array::from_fn(|_| LogHistogram::new()),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            frame_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            frame_index: AtomicU64::new(0),
            frame_timestamp_bits: AtomicU64::new(0),
            frame_start_ns: AtomicU64::new(0),
            recorder: Mutex::new(FlightRecorder::new(config.flight_frames)),
            trace: trace::TraceBuffer::new(config.trace_events),
            config,
        }))
    }

    /// The active configuration.
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// The active mode (never [`TelemetryMode::Off`] — off means no
    /// sink exists).
    pub fn mode(&self) -> TelemetryMode {
        self.config.mode
    }

    /// Whether spans time their section (full mode). Instrumented code
    /// uses this to skip `Instant::now()` entirely in counters mode.
    #[inline]
    pub fn timing(&self) -> bool {
        self.config.mode == TelemetryMode::Full
    }

    /// Opens a timing span for `stage`; the section is recorded when
    /// the guard drops. In counters mode the guard is inert (no clock
    /// is read).
    #[inline]
    pub fn span(&self, stage: Stage) -> Span<'_> {
        if self.timing() {
            Span {
                inner: Some((self, stage, Instant::now())),
            }
        } else {
            Span { inner: None }
        }
    }

    /// [`Telemetry::span`] over an optional sink — the one-liner for
    /// call sites holding `Option<&Telemetry>` / `Option<Arc<..>>`.
    #[inline]
    pub fn span_opt(telemetry: Option<&Telemetry>, stage: Stage) -> Span<'_> {
        match telemetry {
            Some(t) => t.span(stage),
            None => Span { inner: None },
        }
    }

    /// Records a section that started at `start` and ends now (for
    /// measurements whose start lives across a queue hop, e.g. pool
    /// queue wait). No-op in counters mode.
    #[inline]
    pub fn record_since(&self, stage: Stage, start: Instant) {
        if self.timing() {
            self.record_span(stage, start, start.elapsed());
        }
    }

    /// Records an externally measured duration for `stage` into the
    /// histogram and the current frame's attribution (no trace event).
    /// No-op in counters mode.
    #[inline]
    pub fn record_duration_ns(&self, stage: Stage, ns: u64) {
        if self.timing() {
            self.histograms[stage.index()].record(ns);
            self.frame_ns[stage.index()].fetch_add(ns, Ordering::Relaxed);
        }
    }

    fn record_span(&self, stage: Stage, start: Instant, dur: std::time::Duration) {
        let ns = dur.as_nanos().min(u64::MAX as u128) as u64;
        self.histograms[stage.index()].record(ns);
        self.frame_ns[stage.index()].fetch_add(ns, Ordering::Relaxed);
        let start_ns = start.saturating_duration_since(self.epoch).as_nanos() as u64;
        self.trace
            .push(trace::EventKind::Stage(stage), start_ns, ns);
    }

    /// Increments `counter` by `n` (counters and full mode).
    #[inline]
    pub fn count(&self, counter: Counter, n: u64) {
        if n > 0 {
            self.counters[counter.index()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value of `counter`.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter.index()].load(Ordering::Relaxed)
    }

    /// The histogram backing `stage` (for exporters and tests).
    pub fn histogram(&self, stage: Stage) -> &LogHistogram {
        &self.histograms[stage.index()]
    }

    /// Marks the start of frame `index`'s processing window. Stage
    /// recordings between the previous [`Telemetry::frame_end`] and
    /// this frame's end — including pre-frame waits and background
    /// work completing inside the window — attribute to this frame's
    /// timeline.
    pub fn frame_start(&self, index: usize, timestamp: f64) {
        if !self.timing() {
            return;
        }
        self.frame_index.store(index as u64, Ordering::Relaxed);
        self.frame_timestamp_bits
            .store(timestamp.to_bits(), Ordering::Relaxed);
        self.frame_start_ns
            .store(self.epoch.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Marks the end of the current frame: counts it, records the
    /// tracking time, snapshots the per-stage attribution into the
    /// flight-recorder ring, and applies the frame-budget check.
    /// `track_ms` is the frame's measured `Slam::process` wall time.
    pub fn frame_end(&self, track_ms: f64) {
        self.count(Counter::FramesProcessed, 1);
        let over_budget =
            self.config.frame_budget_ms > 0.0 && track_ms > self.config.frame_budget_ms;
        if over_budget {
            self.count(Counter::FramesOverBudget, 1);
        }
        if !self.timing() {
            return;
        }
        let track_ns = (track_ms * 1e6).max(0.0) as u64;
        self.histograms[Stage::Track.index()].record(track_ns);
        let index = self.frame_index.load(Ordering::Relaxed);
        let timestamp = f64::from_bits(self.frame_timestamp_bits.load(Ordering::Relaxed));
        let start_ns = self.frame_start_ns.load(Ordering::Relaxed);
        self.trace
            .push(trace::EventKind::Frame(index), start_ns, track_ns);
        let mut stage_ns = [0u64; Stage::COUNT];
        for (slot, out) in self.frame_ns.iter().zip(stage_ns.iter_mut()) {
            *out = slot.swap(0, Ordering::Relaxed);
        }
        stage_ns[Stage::Track.index()] = track_ns;
        let timeline = FrameTimeline {
            index,
            timestamp,
            total_ms: track_ms,
            over_budget,
            stage_ns,
        };
        if over_budget {
            events::warn(format!(
                "frame budget blown ({:.2} ms > {:.2} ms): {}",
                track_ms,
                self.config.frame_budget_ms,
                timeline.describe()
            ));
        }
        let mut recorder = self.recorder.lock().expect("flight recorder poisoned");
        recorder.push(timeline);
    }

    /// The flight recorder's retained frame timelines, oldest first
    /// (empty outside full mode).
    pub fn timelines(&self) -> Vec<FrameTimeline> {
        self.recorder
            .lock()
            .expect("flight recorder poisoned")
            .timelines()
    }

    /// The most recent over-budget frame's timeline, pinned even after
    /// the ring has rotated past it.
    pub fn last_over_budget(&self) -> Option<FrameTimeline> {
        self.recorder
            .lock()
            .expect("flight recorder poisoned")
            .last_over_budget()
    }

    /// Human-readable dump of the flight recorder (on-demand side of
    /// the automatic over-budget warning).
    pub fn flight_dump(&self) -> String {
        self.recorder
            .lock()
            .expect("flight recorder poisoned")
            .dump()
    }

    /// Aggregated percentiles + counters (the `RunResult` summary).
    pub fn summary(&self) -> TelemetrySummary {
        export::summarize(self)
    }

    /// Prometheus text exposition of every histogram and counter.
    pub fn prometheus(&self) -> String {
        export::prometheus(self)
    }

    /// The buffered spans as a Chrome `trace_event` JSON document
    /// (open in Perfetto / `chrome://tracing`).
    pub fn chrome_trace(&self) -> String {
        self.trace
            .chrome_json(self.counter(Counter::FramesProcessed))
    }

    /// Trace events dropped because the buffer hit
    /// [`TelemetryConfig::trace_events`].
    pub fn trace_events_dropped(&self) -> u64 {
        self.trace.dropped()
    }
}

/// RAII timing guard over one pipeline stage: created by
/// [`Telemetry::span`] / [`Telemetry::span_opt`], records on drop.
/// Inert (`None` inside) when telemetry is off or counters-only, so
/// the disabled cost is one branch on drop.
#[derive(Debug)]
#[must_use = "a span records the section it is alive for; dropping it immediately measures nothing"]
pub struct Span<'t> {
    inner: Option<(&'t Telemetry, Stage, Instant)>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((telemetry, stage, start)) = self.inner.take() {
            telemetry.record_span(stage, start, start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full() -> Arc<Telemetry> {
        Telemetry::new(TelemetryConfig::default().with_mode(TelemetryMode::Full)).unwrap()
    }

    #[test]
    fn off_mode_builds_no_sink() {
        assert!(Telemetry::new(TelemetryConfig::default().with_mode(TelemetryMode::Off)).is_none());
        assert!(Telemetry::new(TelemetryConfig::default()).is_some());
    }

    #[test]
    fn mode_parse_round_trips_and_rejects_typos() {
        for mode in [
            TelemetryMode::Off,
            TelemetryMode::Counters,
            TelemetryMode::Full,
        ] {
            assert_eq!(TelemetryMode::parse(mode.name()), Some(mode));
            assert_eq!(mode.to_string(), mode.name());
        }
        assert_eq!(TelemetryMode::parse("fulll"), None);
        assert_eq!(TelemetryMode::parse(""), None);
        assert_eq!(TelemetryMode::default(), TelemetryMode::Counters);
    }

    #[test]
    fn stage_and_counter_enumerations_are_dense_and_named() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
            assert!(!stage.name().is_empty());
        }
        for (i, counter) in Counter::ALL.iter().enumerate() {
            assert_eq!(counter.index(), i);
            assert!(!counter.name().is_empty());
        }
        // Names are unique (exporter series would collide otherwise).
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::COUNT);
    }

    #[test]
    fn counters_mode_spans_read_no_clock_but_counters_count() {
        let t = Telemetry::new(TelemetryConfig::default()).unwrap();
        assert!(!t.timing());
        {
            let span = t.span(Stage::Matching);
            assert!(span.inner.is_none());
        }
        assert_eq!(t.histogram(Stage::Matching).count(), 0);
        t.count(Counter::KeyframesPromoted, 3);
        assert_eq!(t.counter(Counter::KeyframesPromoted), 3);
        // frame_start/frame_end stay cheap and still count frames.
        t.frame_start(0, 0.0);
        t.frame_end(5.0);
        assert_eq!(t.counter(Counter::FramesProcessed), 1);
        assert!(t.timelines().is_empty());
    }

    #[test]
    fn full_mode_spans_record_into_histograms_and_trace() {
        let t = full();
        {
            let _span = t.span(Stage::Extraction);
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        assert_eq!(t.histogram(Stage::Extraction).count(), 1);
        assert!(t.histogram(Stage::Extraction).max_ns() >= 100_000);
        let trace = t.chrome_trace();
        assert!(trace.contains("\"extraction\""), "{trace}");
    }

    #[test]
    fn span_opt_none_is_inert() {
        let span = Telemetry::span_opt(None, Stage::Matching);
        assert!(span.inner.is_none());
        drop(span);
    }

    #[test]
    fn frame_windows_attribute_stages_and_rotate_the_ring() {
        let mut config = TelemetryConfig::default().with_mode(TelemetryMode::Full);
        config.flight_frames = 2;
        let t = Telemetry::new(config).unwrap();
        for frame in 0..3u64 {
            t.frame_start(frame as usize, frame as f64 / 30.0);
            t.record_duration_ns(Stage::Matching, 1_000_000 + frame * 1_000);
            t.frame_end(2.0);
        }
        let timelines = t.timelines();
        assert_eq!(timelines.len(), 2, "ring keeps the last N");
        assert_eq!(timelines[0].index, 1);
        assert_eq!(timelines[1].index, 2);
        assert_eq!(timelines[1].stage_ns[Stage::Matching.index()], 1_002_000);
        assert!(timelines[1].stage_ms(Stage::Track) > 0.0);
        assert_eq!(t.counter(Counter::FramesProcessed), 3);
    }

    #[test]
    fn frame_budget_flags_slow_frames() {
        let mut config = TelemetryConfig::default().with_mode(TelemetryMode::Full);
        config.frame_budget_ms = 10.0;
        let t = Telemetry::new(config).unwrap();
        t.frame_start(0, 0.0);
        t.frame_end(5.0); // within budget
        t.frame_start(1, 0.033);
        t.frame_end(25.0); // blown
        assert_eq!(t.counter(Counter::FramesOverBudget), 1);
        let pinned = t.last_over_budget().expect("over-budget frame pinned");
        assert_eq!(pinned.index, 1);
        assert!(pinned.over_budget);
        let dump = t.flight_dump();
        assert!(dump.contains("frame 1"), "{dump}");
    }

    #[test]
    fn pre_frame_waits_attribute_to_the_following_frame() {
        let t = full();
        // The wait for frame 0 is recorded before frame_start(0) —
        // exactly the runner's call order.
        t.record_duration_ns(Stage::FrameWait, 3_000_000);
        t.frame_start(0, 0.0);
        t.frame_end(1.0);
        let timelines = t.timelines();
        assert_eq!(timelines[0].stage_ns[Stage::FrameWait.index()], 3_000_000);
    }

    #[test]
    fn summary_exposes_percentiles_and_counters() {
        let t = full();
        for i in 0..100u64 {
            t.record_duration_ns(Stage::Matching, (i + 1) * 100_000);
        }
        t.count(Counter::MatchInliers, 42);
        let summary = t.summary();
        let matching = summary.stage(Stage::Matching).expect("recorded stage");
        assert_eq!(matching.count, 100);
        assert!(matching.p50_ms <= matching.p95_ms);
        assert!(matching.p95_ms <= matching.p99_ms);
        assert!(matching.p99_ms <= matching.max_ms + 1e-9);
        assert!(
            summary.stage(Stage::LoopVerify).is_none(),
            "empty stages omitted"
        );
        assert_eq!(summary.counter(Counter::MatchInliers), 42);
    }
}
