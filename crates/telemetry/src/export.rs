//! Exporters: the aggregated [`TelemetrySummary`] (attached to
//! `RunResult` and serializable to JSON) and the Prometheus text
//! exposition. The Chrome trace exporter lives with the span buffer in
//! the trace module.

use crate::hist::{self, HistogramSnapshot};
use crate::{Counter, Stage, Telemetry, TelemetryMode};
use std::fmt::Write as _;

/// Aggregated latency statistics for one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageSummary {
    /// The stage these statistics describe.
    pub stage: Stage,
    /// Sections recorded.
    pub count: u64,
    /// Median latency in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency in milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency in milliseconds.
    pub p99_ms: f64,
    /// Exact maximum latency in milliseconds.
    pub max_ms: f64,
    /// Mean latency in milliseconds.
    pub mean_ms: f64,
    /// Total time attributed to the stage in milliseconds.
    pub total_ms: f64,
}

impl StageSummary {
    fn from_snapshot(stage: Stage, snap: &HistogramSnapshot) -> Option<StageSummary> {
        if snap.count == 0 {
            return None;
        }
        let q = |p: f64| snap.quantile_ns(p).unwrap_or(0) as f64 / 1e6;
        Some(StageSummary {
            stage,
            count: snap.count,
            p50_ms: q(0.50),
            p95_ms: q(0.95),
            p99_ms: q(0.99),
            max_ms: snap.max_ns as f64 / 1e6,
            mean_ms: snap.sum_ns as f64 / snap.count as f64 / 1e6,
            total_ms: snap.sum_ns as f64 / 1e6,
        })
    }
}

/// The whole run's telemetry rollup: per-stage percentiles (stages
/// that recorded at least one section) and every counter. Attached to
/// `RunResult` and printable as JSON via [`TelemetrySummary::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySummary {
    /// Mode the run executed under.
    pub mode: TelemetryMode,
    /// Summaries of every stage with at least one recording, in
    /// [`Stage::ALL`] order (empty outside full mode).
    pub stages: Vec<StageSummary>,
    counters: [u64; Counter::COUNT],
}

impl TelemetrySummary {
    /// The summary for `stage`, if it recorded anything.
    pub fn stage(&self, stage: Stage) -> Option<&StageSummary> {
        self.stages.iter().find(|s| s.stage == stage)
    }

    /// Final value of `counter`.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter.index()]
    }

    /// Every counter with a nonzero value, in declaration order.
    pub fn nonzero_counters(&self) -> Vec<(Counter, u64)> {
        Counter::ALL
            .iter()
            .filter_map(|&c| {
                let v = self.counter(c);
                (v > 0).then_some((c, v))
            })
            .collect()
    }

    /// Serializes the summary as a self-contained JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        let _ = write!(out, "{{\"mode\":\"{}\",\"stages\":{{", self.mode);
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"p50_ms\":{:.4},\"p95_ms\":{:.4},\
                 \"p99_ms\":{:.4},\"max_ms\":{:.4},\"mean_ms\":{:.4},\"total_ms\":{:.4}}}",
                s.stage.name(),
                s.count,
                s.p50_ms,
                s.p95_ms,
                s.p99_ms,
                s.max_ms,
                s.mean_ms,
                s.total_ms
            );
        }
        out.push_str("},\"counters\":{");
        for (i, counter) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", counter.name(), self.counter(*counter));
        }
        out.push_str("}}");
        out
    }
}

pub(crate) fn summarize(telemetry: &Telemetry) -> TelemetrySummary {
    let stages = Stage::ALL
        .iter()
        .filter_map(|&stage| {
            StageSummary::from_snapshot(stage, &telemetry.histogram(stage).snapshot())
        })
        .collect();
    let counters = std::array::from_fn(|i| telemetry.counter(Counter::ALL[i]));
    TelemetrySummary {
        mode: telemetry.mode(),
        stages,
        counters,
    }
}

/// Prometheus text exposition: one `histogram` family over all stages
/// (cumulative buckets in seconds; zero-delta buckets elided), gauge
/// quantiles for convenience, and one `counter` per [`Counter`].
pub(crate) fn prometheus(telemetry: &Telemetry) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str("# HELP eslam_stage_duration_seconds Per-stage pipeline latency.\n");
    out.push_str("# TYPE eslam_stage_duration_seconds histogram\n");
    for &stage in &Stage::ALL {
        let snap = telemetry.histogram(stage).snapshot();
        if snap.count == 0 {
            continue;
        }
        let name = stage.name();
        let mut cumulative = 0u64;
        for (slot, &bucket) in snap.buckets.iter().enumerate() {
            if bucket == 0 {
                continue;
            }
            cumulative += bucket;
            if slot == hist::SLOTS - 1 {
                // Overflow slot is covered by +Inf below.
                continue;
            }
            let le = hist::slot_upper_ns(slot) as f64 / 1e9;
            let _ = writeln!(
                out,
                "eslam_stage_duration_seconds_bucket{{stage=\"{name}\",le=\"{le:.9}\"}} {cumulative}"
            );
        }
        let _ = writeln!(
            out,
            "eslam_stage_duration_seconds_bucket{{stage=\"{name}\",le=\"+Inf\"}} {}",
            snap.count
        );
        let _ = writeln!(
            out,
            "eslam_stage_duration_seconds_sum{{stage=\"{name}\"}} {:.9}",
            snap.sum_ns as f64 / 1e9
        );
        let _ = writeln!(
            out,
            "eslam_stage_duration_seconds_count{{stage=\"{name}\"}} {}",
            snap.count
        );
    }
    out.push_str("# HELP eslam_stage_quantile_seconds Per-stage latency quantiles.\n");
    out.push_str("# TYPE eslam_stage_quantile_seconds gauge\n");
    for &stage in &Stage::ALL {
        let snap = telemetry.histogram(stage).snapshot();
        if snap.count == 0 {
            continue;
        }
        for (label, q) in [("0.5", 0.50), ("0.95", 0.95), ("0.99", 0.99)] {
            let value = snap.quantile_ns(q).unwrap_or(0) as f64 / 1e9;
            let _ = writeln!(
                out,
                "eslam_stage_quantile_seconds{{stage=\"{}\",quantile=\"{label}\"}} {value:.9}",
                stage.name()
            );
        }
    }
    for &counter in &Counter::ALL {
        let name = counter.name();
        let _ = writeln!(out, "# TYPE eslam_{name}_total counter");
        let _ = writeln!(out, "eslam_{name}_total {}", telemetry.counter(counter));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetryConfig;

    fn full() -> std::sync::Arc<Telemetry> {
        Telemetry::new(TelemetryConfig::default().with_mode(TelemetryMode::Full)).unwrap()
    }

    #[test]
    fn json_summary_is_balanced_and_names_stages() {
        let t = full();
        for _ in 0..10 {
            t.record_duration_ns(Stage::Matching, 2_000_000);
        }
        t.count(Counter::FramesProcessed, 10);
        let json = t.summary().to_json();
        assert!(json.contains("\"mode\":\"full\""), "{json}");
        assert!(json.contains("\"matching\":{\"count\":10"), "{json}");
        assert!(json.contains("\"frames_processed\":10"), "{json}");
        let braces = json.matches('{').count() as i64 - json.matches('}').count() as i64;
        assert_eq!(braces, 0, "{json}");
        // Stages with no recordings are absent from the JSON too.
        assert!(!json.contains("\"loop_verify\""), "{json}");
    }

    #[test]
    fn counters_mode_summary_has_counters_but_no_stages() {
        let t = Telemetry::new(TelemetryConfig::default()).unwrap();
        t.count(Counter::KeyframesPromoted, 4);
        let summary = t.summary();
        assert_eq!(summary.mode, TelemetryMode::Counters);
        assert!(summary.stages.is_empty());
        assert_eq!(summary.counter(Counter::KeyframesPromoted), 4);
        assert_eq!(
            summary.nonzero_counters(),
            vec![(Counter::KeyframesPromoted, 4)]
        );
    }

    #[test]
    fn prometheus_exposition_has_cumulative_buckets_and_counters() {
        let t = full();
        t.record_duration_ns(Stage::Extraction, 1_000_000); // 1 ms
        t.record_duration_ns(Stage::Extraction, 4_000_000); // 4 ms
        t.count(Counter::LoopClosuresAccepted, 2);
        let text = t.prometheus();
        assert!(
            text.contains("# TYPE eslam_stage_duration_seconds histogram"),
            "{text}"
        );
        assert!(
            text.contains("eslam_stage_duration_seconds_count{stage=\"extraction\"} 2"),
            "{text}"
        );
        assert!(
            text.contains(
                "eslam_stage_duration_seconds_bucket{stage=\"extraction\",le=\"+Inf\"} 2"
            ),
            "{text}"
        );
        assert!(
            text.contains("eslam_loop_closures_accepted_total 2"),
            "{text}"
        );
        assert!(
            text.contains("eslam_stage_quantile_seconds{stage=\"extraction\",quantile=\"0.95\"}"),
            "{text}"
        );
        // Cumulative: the le values for extraction must be nondecreasing counts.
        let mut last = 0u64;
        for line in text
            .lines()
            .filter(|l| l.starts_with("eslam_stage_duration_seconds_bucket{stage=\"extraction\""))
        {
            let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(value >= last, "{line}");
            last = value;
        }
        assert_eq!(last, 2);
    }

    #[test]
    fn summary_quantiles_track_recorded_distribution() {
        let t = full();
        // 90 fast sections and 10 slow ones.
        for _ in 0..90 {
            t.record_duration_ns(Stage::PoseOptimize, 1_000_000);
        }
        for _ in 0..10 {
            t.record_duration_ns(Stage::PoseOptimize, 30_000_000);
        }
        let s = *t.summary().stage(Stage::PoseOptimize).unwrap();
        assert!((0.8..=1.2).contains(&s.p50_ms), "p50 {}", s.p50_ms);
        assert!((25.0..=35.0).contains(&s.p99_ms), "p99 {}", s.p99_ms);
        assert!((29.0..=31.0).contains(&s.max_ms), "max {}", s.max_ms);
        assert!(
            (s.total_ms - (90.0 + 300.0)).abs() < 1.0,
            "total {}",
            s.total_ms
        );
    }
}
