//! Bounded diagnostic event layer.
//!
//! Library code must never write to stderr unconditionally: one-time
//! fallback warnings (e.g. "descriptor kind cannot stream") and
//! over-budget frame reports land here instead, in a process-wide
//! bounded ring. Applications decide what to do with them — drain with
//! [`take`], peek with [`snapshot`], or opt into stderr mirroring with
//! [`mirror_to_stderr`] (off by default).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Maximum events retained; older events are discarded first.
pub const CAPACITY: usize = 256;

/// Severity of a diagnostic event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Informational note.
    Info,
    /// Something degraded or fell back; the run continues.
    Warn,
}

impl Severity {
    /// Label used when rendering the event.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
        }
    }
}

/// One diagnostic event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// How serious the event is.
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
}

static EVENTS: Mutex<Vec<Event>> = Mutex::new(Vec::new());
static DISCARDED: AtomicU64 = AtomicU64::new(0);
static MIRROR: AtomicBool = AtomicBool::new(false);

fn push(severity: Severity, message: String) {
    if MIRROR.load(Ordering::Relaxed) {
        eprintln!("eslam [{}] {}", severity.label(), message);
    }
    let mut events = EVENTS.lock().expect("event ring poisoned");
    if events.len() >= CAPACITY {
        events.remove(0);
        DISCARDED.fetch_add(1, Ordering::Relaxed);
    }
    events.push(Event { severity, message });
}

/// Records a warning event.
pub fn warn(message: impl Into<String>) {
    push(Severity::Warn, message.into());
}

/// Records an informational event.
pub fn info(message: impl Into<String>) {
    push(Severity::Info, message.into());
}

/// Drains and returns all buffered events (oldest first).
pub fn take() -> Vec<Event> {
    std::mem::take(&mut *EVENTS.lock().expect("event ring poisoned"))
}

/// Returns a copy of the buffered events without draining them.
pub fn snapshot() -> Vec<Event> {
    EVENTS.lock().expect("event ring poisoned").clone()
}

/// Events discarded because the ring was full.
pub fn discarded() -> u64 {
    DISCARDED.load(Ordering::Relaxed)
}

/// Enables or disables mirroring of new events to stderr (off by
/// default so library code never writes to stderr unless the
/// application opts in).
pub fn mirror_to_stderr(enabled: bool) {
    MIRROR.store(enabled, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test exercises the whole module: the ring is process-global,
    // so independent #[test] fns would race on it.
    #[test]
    fn ring_buffers_drains_and_bounds_events() {
        let _ = take();
        warn("streaming fallback engaged");
        info("atlas published");
        let seen = snapshot();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].severity, Severity::Warn);
        assert_eq!(seen[0].message, "streaming fallback engaged");
        assert_eq!(seen[1].severity, Severity::Info);

        let drained = take();
        assert_eq!(drained, seen);
        assert!(snapshot().is_empty(), "take() empties the ring");

        let before = discarded();
        for i in 0..CAPACITY + 10 {
            info(format!("event {i}"));
        }
        let events = take();
        assert_eq!(events.len(), CAPACITY, "ring is bounded");
        assert_eq!(
            events[0].message, "event 10",
            "oldest events are discarded first"
        );
        assert_eq!(discarded() - before, 10);
        assert_eq!(Severity::Warn.label(), "warn");
        assert_eq!(Severity::Info.label(), "info");
    }
}
