//! The shared, persistent **Atlas**: one map, many sessions.
//!
//! The ROADMAP's north star is "millions of users against a shared
//! world" — the mapping side of that is a map that outlives the run
//! that built it and can be *served* to many concurrent readers. The
//! [`Atlas`] is that serving surface:
//!
//! * **persistent** — [`Atlas::save`]/[`Atlas::load`] round-trip the
//!   landmark map, the keyframe store, the covisibility graph and the
//!   trained BoW vocabulary (with tf-idf weights) through the
//!   versioned, checksummed binary format of [`crate::persist`]
//!   bit-identically;
//! * **read-mostly shared** — readers take an [`Arc`] snapshot of an
//!   immutable [`AtlasState`] and never hold a lock while localizing;
//!   the single writer publishes a *new* state and bumps an epoch
//!   counter, so N concurrent [`crate::session::Session`]s proceed
//!   wait-free between publishes and cheaply detect staleness;
//! * **query-ready** — every published state carries the derived
//!   cold-start relocalization index
//!   (`eslam_backend::Relocalizer`), built once at publish time, not
//!   per query.
//!
//! # Epoch/snapshot concurrency
//!
//! ```text
//!   writer: build AtlasState ──▶ publish() ──▶ swap Arc, epoch += 1
//!   reader: epoch() changed? ──▶ snapshot() ──▶ localize against Arc
//! ```
//!
//! `snapshot()` clones an `Arc` under a mutex held for nanoseconds;
//! all actual work (BoW retrieval, matching, PnP) happens against the
//! immutable snapshot with no lock held. Readers can never starve the
//! writer and the writer can never tear a reader's view.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use eslam_backend::{CovisibilityGraph, KeyframeStore, Relocalizer};
use eslam_features::bow::{BowParams, Vocabulary};

use crate::map::Map;
use crate::persist::{self, AtlasContents, AtlasError};

/// One immutable, query-ready snapshot of the shared world: the
/// persisted sections plus the derived relocalization index. Sessions
/// hold these by `Arc` and localize against them lock-free.
#[derive(Debug, Clone)]
pub struct AtlasState {
    map: Map,
    keyframes: KeyframeStore,
    covisibility: CovisibilityGraph,
    vocabulary: Option<Vocabulary>,
    relocalizer: Relocalizer,
}

impl AtlasState {
    /// An empty world: no landmarks, no keyframes, no vocabulary.
    pub fn empty() -> AtlasState {
        AtlasState {
            map: Map::new(),
            keyframes: KeyframeStore::new(),
            covisibility: CovisibilityGraph::new(),
            vocabulary: None,
            relocalizer: Relocalizer::default(),
        }
    }

    /// Assembles a state from decoded file contents, rebuilding the
    /// relocalization index from the persisted vocabulary.
    pub fn from_contents(contents: AtlasContents) -> AtlasState {
        let AtlasContents {
            map,
            keyframes,
            covisibility,
            vocabulary,
        } = contents;
        let relocalizer = match &vocabulary {
            Some(vocab) => Relocalizer::build(vocab, &keyframes),
            None => Relocalizer::default(),
        };
        AtlasState {
            map,
            keyframes,
            covisibility,
            vocabulary,
            relocalizer,
        }
    }

    /// Builds a query-ready state from a finished run's map products,
    /// training the vocabulary **offline** from the full keyframe
    /// descriptor corpus (unlike the tracker's online detector, which
    /// trains on whatever prefix it had seen when the threshold hit)
    /// and fitting tf-idf weights over per-keyframe documents.
    ///
    /// Returns an error when the graph and store disagree; an atlas
    /// without enough descriptors to train simply has no vocabulary
    /// (and therefore no relocalization index).
    pub fn build(
        map: Map,
        keyframes: KeyframeStore,
        covisibility: CovisibilityGraph,
        bow: &BowParams,
    ) -> Result<AtlasState, String> {
        if covisibility.len() != keyframes.len() {
            return Err(format!(
                "covisibility graph has {} nodes but the store has {} keyframes",
                covisibility.len(),
                keyframes.len()
            ));
        }
        let corpus: Vec<_> = keyframes
            .keyframes()
            .iter()
            .flat_map(|kf| kf.descriptors.iter().copied())
            .collect();
        let vocabulary = Vocabulary::train(&corpus, bow).map(|mut vocab| {
            vocab.train_idf(
                keyframes
                    .keyframes()
                    .iter()
                    .map(|kf| kf.descriptors.as_slice()),
            );
            vocab
        });
        Ok(AtlasState::from_contents(AtlasContents {
            map,
            keyframes,
            covisibility,
            vocabulary,
        }))
    }

    /// The landmark map.
    pub fn map(&self) -> &Map {
        &self.map
    }

    /// The keyframe store.
    pub fn keyframes(&self) -> &KeyframeStore {
        &self.keyframes
    }

    /// The covisibility graph.
    pub fn covisibility(&self) -> &CovisibilityGraph {
        &self.covisibility
    }

    /// The trained vocabulary, when this state has one.
    pub fn vocabulary(&self) -> Option<&Vocabulary> {
        self.vocabulary.as_ref()
    }

    /// The cold-start relocalization index (empty when there is no
    /// vocabulary).
    pub fn relocalizer(&self) -> &Relocalizer {
        &self.relocalizer
    }

    /// Whether this state can answer cold-start queries.
    pub fn can_relocalize(&self) -> bool {
        self.vocabulary.is_some() && !self.relocalizer.is_empty()
    }

    fn to_contents(&self) -> AtlasContents {
        AtlasContents {
            map: self.map.clone(),
            keyframes: self.keyframes.clone(),
            covisibility: self.covisibility.clone(),
            vocabulary: self.vocabulary.clone(),
        }
    }
}

/// The shared multi-session atlas: a single-writer, many-reader handle
/// around an [`Arc`]-swapped [`AtlasState`]. See the module docs for
/// the concurrency contract.
#[derive(Debug)]
pub struct Atlas {
    snapshot: Mutex<Arc<AtlasState>>,
    epoch: AtomicU64,
}

impl Default for Atlas {
    fn default() -> Self {
        Atlas::empty()
    }
}

impl Atlas {
    /// Wraps a state as epoch 0.
    pub fn new(state: AtlasState) -> Atlas {
        Atlas {
            snapshot: Mutex::new(Arc::new(state)),
            epoch: AtomicU64::new(0),
        }
    }

    /// An atlas of nothing — the publish target for a first mapping
    /// run.
    pub fn empty() -> Atlas {
        Atlas::new(AtlasState::empty())
    }

    /// The current epoch. Monotonically increases by one per
    /// [`Atlas::publish`]; readers compare against the epoch they
    /// snapshotted at to detect staleness without taking the snapshot
    /// lock.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Clones the current state handle. The lock is held only for the
    /// `Arc` clone — all queries run lock-free against the returned
    /// snapshot.
    pub fn snapshot(&self) -> Arc<AtlasState> {
        self.snapshot.lock().expect("atlas lock poisoned").clone()
    }

    /// Atomically replaces the shared state and bumps the epoch.
    /// Readers holding older snapshots are unaffected; their next
    /// [`Atlas::epoch`] check tells them to re-snapshot.
    pub fn publish(&self, state: AtlasState) {
        let next = Arc::new(state);
        *self.snapshot.lock().expect("atlas lock poisoned") = next;
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Serializes the current snapshot to `path` in the
    /// [`crate::persist`] binary format (atomic rename, never a torn
    /// file).
    pub fn save(&self, path: &Path) -> Result<(), AtlasError> {
        let state = self.snapshot();
        persist::save_atlas(&state.to_contents(), path)
    }

    /// Loads an atlas file and rebuilds the derived relocalization
    /// index.
    pub fn load(path: &Path) -> Result<Atlas, AtlasError> {
        let contents = persist::load_atlas(path)?;
        Ok(Atlas::new(AtlasState::from_contents(contents)))
    }

    /// Loads the atlas named by `ESLAM_ATLAS`, when set. `None` when
    /// the variable is unset or empty; errors surface as they would
    /// from [`Atlas::load`].
    pub fn load_from_env() -> Result<Option<Atlas>, AtlasError> {
        match crate::overrides::atlas_path() {
            Some(path) => Atlas::load(&path).map(Some),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eslam_features::Descriptor;
    use eslam_geometry::{Se3, Vec2, Vec3};

    fn desc(tag: u64) -> Descriptor {
        Descriptor::from_words([tag.rotate_left(9), !tag, tag ^ 0x5a5a, tag])
    }

    fn small_world() -> AtlasState {
        let mut map = Map::new();
        for i in 0..4u64 {
            map.insert(
                Vec3::new(i as f64, 0.0, 2.0),
                desc(i),
                0,
                0,
                Vec2::new(i as f64, 0.0),
            );
        }
        let mut store = KeyframeStore::new();
        store.push(0, 0.0, Se3::identity(), Vec::new(), Vec::new());
        let mut graph = CovisibilityGraph::new();
        graph.add_node();
        AtlasState::build(map, store, graph, &BowParams::default()).unwrap()
    }

    #[test]
    fn publish_bumps_the_epoch_and_swaps_the_snapshot() {
        let atlas = Atlas::empty();
        assert_eq!(atlas.epoch(), 0);
        let before = atlas.snapshot();
        assert_eq!(before.map().len(), 0);

        atlas.publish(small_world());
        assert_eq!(atlas.epoch(), 1);
        // The old snapshot is untouched; the new one sees the world.
        assert_eq!(before.map().len(), 0);
        assert_eq!(atlas.snapshot().map().len(), 4);
    }

    #[test]
    fn concurrent_readers_never_block_the_writer() {
        let atlas = Arc::new(Atlas::empty());
        let stop = Arc::new(AtomicU64::new(0));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let atlas = Arc::clone(&atlas);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut seen = 0u64;
                    while stop.load(Ordering::Acquire) == 0 {
                        let snap = atlas.snapshot();
                        // A snapshot is internally consistent even
                        // mid-publish.
                        assert_eq!(snap.keyframes().len(), snap.covisibility().len());
                        seen = seen.max(atlas.epoch());
                    }
                    seen
                })
            })
            .collect();

        for _ in 0..50 {
            atlas.publish(small_world());
        }
        stop.store(1, Ordering::Release);
        for r in readers {
            assert!(r.join().expect("reader panicked") <= 50);
        }
        assert_eq!(atlas.epoch(), 50);
    }

    #[test]
    fn offline_build_trains_vocabulary_and_idf_when_corpus_suffices() {
        let mut store = KeyframeStore::new();
        let mut graph = CovisibilityGraph::new();
        for k in 0..4usize {
            let descriptors: Vec<Descriptor> =
                (0..24u64).map(|i| desc(k as u64 * 1000 + i * 7)).collect();
            let observations: Vec<_> = (0..24u64)
                .map(|i| eslam_backend::KeyframeObservation {
                    landmark: i,
                    pixel: Vec2::new(i as f64, k as f64),
                    position: Vec3::new(i as f64 * 0.1, 0.0, 2.0),
                })
                .collect();
            store.push(k, k as f64, Se3::identity(), observations, descriptors);
            graph.add_node();
        }
        let state = AtlasState::build(Map::new(), store, graph, &BowParams::default()).unwrap();
        let vocab = state.vocabulary().expect("corpus large enough to train");
        assert!(vocab.idf().is_some(), "offline build fits idf weights");
        assert!(state.can_relocalize());
    }
}
