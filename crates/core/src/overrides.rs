//! One typed surface over every `ESLAM_*` environment override.
//!
//! The system honours seven process-wide toggles, each read **once**
//! (cached behind a `OnceLock` at its point of use) so a run cannot
//! change behaviour mid-flight:
//!
//! | variable | values | forces |
//! |---|---|---|
//! | `ESLAM_MATCH_KERNEL` | `auto`, `scalar`, `popcnt`, `avx2`, `avx512` | the Hamming-matcher SIMD rung |
//! | `ESLAM_PREFETCH` | `auto`, `on`/`1`/`true`, `off`/`0`/`false` | frame-source double-buffered prefetch |
//! | `ESLAM_BACKEND` | `auto`, `off`, `sync`, `async` | keyframe-backend execution mode |
//! | `ESLAM_EXTRACT` | `auto`, `stream`, `passes` | the ORB extraction path (fused streaming vs multi-pass) |
//! | `ESLAM_BANDS` | `auto`, a positive integer | the per-level row-band count for band-parallel streaming |
//! | `ESLAM_TELEMETRY` | `auto`, `off`, `counters`, `full` | the telemetry recording mode |
//! | `ESLAM_ATLAS` | a filesystem path | the atlas file sessions load at start |
//!
//! All seven share one parse contract (implemented in
//! `eslam_features::envopt`): unset, empty and `auto` mean "no
//! override"; keyword values are trimmed and case-insensitive
//! (`ESLAM_ATLAS` is trimmed only — paths are case-sensitive); and an
//! unrecognised value panics up front with the accepted spellings,
//! never silently falling back.
//!
//! [`Overrides::from_env`] parses and validates the whole set in one
//! shot — harness binaries call it at startup so a typo'd variable
//! fails the run before any frames are processed — and
//! [`Overrides::report`] renders the active set for logs.

use std::path::PathBuf;

use eslam_backend::BackendMode;
use eslam_features::envopt;
use eslam_features::matcher::MatchKernel;
use eslam_features::ExtractMode;
use eslam_telemetry::TelemetryMode;

/// Environment variable naming an atlas file for sessions to load.
pub const ATLAS_ENV: &str = "ESLAM_ATLAS";

/// Re-export of the prefetch variable name, for discoverability
/// alongside the others.
pub use crate::config::PREFETCH_ENV;
/// Re-export of the telemetry-mode variable name.
pub use crate::config::TELEMETRY_ENV;
/// Re-export of the backend-mode variable name.
pub use eslam_backend::BACKEND_ENV;
/// Re-export of the match-kernel variable name.
pub use eslam_features::matcher::MATCH_KERNEL_ENV;
/// Re-export of the row-band-count variable name.
pub use eslam_features::stream::BANDS_ENV;
/// Re-export of the extraction-path variable name.
pub use eslam_features::stream::EXTRACT_ENV;

/// The full set of environment overrides, parsed and validated.
/// `None` everywhere means "defer to configuration/detection".
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Overrides {
    /// Forced Hamming-matcher kernel rung, from `ESLAM_MATCH_KERNEL`.
    pub match_kernel: Option<MatchKernel>,
    /// Forced prefetch decision, from `ESLAM_PREFETCH`.
    pub prefetch: Option<bool>,
    /// Forced backend execution mode, from `ESLAM_BACKEND`.
    pub backend: Option<BackendMode>,
    /// Forced ORB extraction path, from `ESLAM_EXTRACT`.
    pub extract: Option<ExtractMode>,
    /// Forced per-level row-band count, from `ESLAM_BANDS`.
    pub bands: Option<usize>,
    /// Forced telemetry recording mode, from `ESLAM_TELEMETRY`.
    pub telemetry: Option<TelemetryMode>,
    /// Atlas file to load, from `ESLAM_ATLAS`.
    pub atlas: Option<PathBuf>,
}

impl Overrides {
    /// Parses every `ESLAM_*` override from the environment in one
    /// shot.
    ///
    /// # Panics
    /// Panics — with the variable name, the offending value and the
    /// accepted spellings — when any variable holds an unrecognised
    /// value. Call this early: failing at startup beats a run that
    /// silently ignored the operator's intent.
    pub fn from_env() -> Overrides {
        Overrides {
            match_kernel: envopt::forced(
                MATCH_KERNEL_ENV,
                "auto, scalar, popcnt, avx2 or avx512",
                MatchKernel::from_name,
            ),
            prefetch: envopt::forced(PREFETCH_ENV, "auto, on or off", |value| match value {
                "on" | "1" | "true" => Some(true),
                "off" | "0" | "false" => Some(false),
                _ => None,
            }),
            backend: envopt::forced(
                BACKEND_ENV,
                "auto, off, sync or async",
                |value| match value {
                    "off" => Some(BackendMode::Off),
                    "sync" => Some(BackendMode::Sync),
                    "async" => Some(BackendMode::Async),
                    _ => None,
                },
            ),
            extract: envopt::forced(EXTRACT_ENV, "auto, stream or passes", ExtractMode::parse),
            bands: envopt::forced(BANDS_ENV, "auto or a positive band count", |value| {
                value.parse::<usize>().ok().filter(|n| *n >= 1)
            }),
            telemetry: envopt::forced(
                TELEMETRY_ENV,
                "auto, off, counters or full",
                TelemetryMode::parse,
            ),
            atlas: atlas_path(),
        }
    }

    /// One line per variable, `auto` for unset — for run headers and
    /// CI logs.
    pub fn report(&self) -> String {
        let kernel = self.match_kernel.map_or("auto", |k| k.name()).to_string();
        let prefetch = match self.prefetch {
            None => "auto",
            Some(true) => "on",
            Some(false) => "off",
        };
        let backend = match self.backend {
            None => "auto",
            Some(BackendMode::Off) => "off",
            Some(BackendMode::Sync) => "sync",
            Some(BackendMode::Async) => "async",
        };
        let extract = self
            .extract
            .map_or_else(|| "auto".to_string(), |m| m.to_string());
        let bands = self
            .bands
            .map_or_else(|| "auto".to_string(), |n| n.to_string());
        let telemetry = self.telemetry.map_or("auto", |m| m.name());
        let atlas = self
            .atlas
            .as_ref()
            .map_or_else(|| "unset".to_string(), |p| p.display().to_string());
        format!(
            "{MATCH_KERNEL_ENV}={kernel} {PREFETCH_ENV}={prefetch} \
             {BACKEND_ENV}={backend} {EXTRACT_ENV}={extract} \
             {BANDS_ENV}={bands} {TELEMETRY_ENV}={telemetry} {ATLAS_ENV}={atlas}"
        )
    }
}

/// The atlas path named by [`ATLAS_ENV`], when set and non-empty.
/// Trimmed but **not** lowercased (paths are case-sensitive) and with
/// no `auto` keyword (a file could legitimately be named `auto`).
pub fn atlas_path() -> Option<PathBuf> {
    envopt::raw_value(ATLAS_ENV).map(PathBuf::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_the_inactive_set() {
        let overrides = Overrides::default();
        assert_eq!(
            overrides.report(),
            "ESLAM_MATCH_KERNEL=auto ESLAM_PREFETCH=auto ESLAM_BACKEND=auto \
             ESLAM_EXTRACT=auto ESLAM_BANDS=auto ESLAM_TELEMETRY=auto ESLAM_ATLAS=unset"
        );
    }

    #[test]
    fn report_renders_an_active_set() {
        let overrides = Overrides {
            match_kernel: Some(MatchKernel::Scalar),
            prefetch: Some(false),
            backend: Some(BackendMode::Async),
            extract: Some(ExtractMode::Stream),
            bands: Some(3),
            telemetry: Some(TelemetryMode::Full),
            atlas: Some(PathBuf::from("/maps/office.atlas")),
        };
        assert_eq!(
            overrides.report(),
            "ESLAM_MATCH_KERNEL=scalar ESLAM_PREFETCH=off ESLAM_BACKEND=async \
             ESLAM_EXTRACT=stream ESLAM_BANDS=3 ESLAM_TELEMETRY=full \
             ESLAM_ATLAS=/maps/office.atlas"
        );
    }

    /// Child body of the subprocess tests below: parses the environment
    /// and prints the resulting report. Run only when spawned with
    /// `--ignored` — env-var parsing cannot be exercised in-process
    /// because variables are process-global and tests run in parallel.
    #[test]
    #[ignore = "spawned as a child process by the from_env tests"]
    fn ignored_from_env_probe() {
        println!("PROBE {}", Overrides::from_env().report());
    }

    /// Re-runs this test binary with a controlled environment, executing
    /// only [`ignored_from_env_probe`].
    fn run_probe(envs: &[(&str, &str)]) -> std::process::Output {
        let mut cmd = std::process::Command::new(std::env::current_exe().unwrap());
        cmd.args([
            "--exact",
            "--ignored",
            "--nocapture",
            "overrides::tests::ignored_from_env_probe",
        ]);
        for var in [
            MATCH_KERNEL_ENV,
            PREFETCH_ENV,
            BACKEND_ENV,
            EXTRACT_ENV,
            BANDS_ENV,
            TELEMETRY_ENV,
            ATLAS_ENV,
        ] {
            cmd.env_remove(var);
        }
        for (var, value) in envs {
            cmd.env(var, value);
        }
        cmd.output().expect("spawning the probe child must succeed")
    }

    #[test]
    fn from_env_parses_the_full_override_set() {
        let out = run_probe(&[
            (MATCH_KERNEL_ENV, "scalar"),
            (PREFETCH_ENV, "off"),
            (BACKEND_ENV, "sync"),
            (EXTRACT_ENV, " Stream "), // trimmed + case-insensitive
            (BANDS_ENV, "4"),
            (TELEMETRY_ENV, "counters"),
            (ATLAS_ENV, "/maps/office.atlas"),
        ]);
        assert!(out.status.success(), "probe failed: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains(
                "PROBE ESLAM_MATCH_KERNEL=scalar ESLAM_PREFETCH=off ESLAM_BACKEND=sync \
                 ESLAM_EXTRACT=stream ESLAM_BANDS=4 ESLAM_TELEMETRY=counters \
                 ESLAM_ATLAS=/maps/office.atlas"
            ),
            "unexpected probe output: {stdout}"
        );
    }

    #[test]
    fn typoed_values_fail_from_env_for_every_variable() {
        // A typo in any `ESLAM_*` toggle must abort the run up front
        // (the `axv2` regression class), never silently fall back.
        for (var, bad) in [
            (MATCH_KERNEL_ENV, "axv2"),
            (PREFETCH_ENV, "offf"),
            (BACKEND_ENV, "asink"),
            (EXTRACT_ENV, "streem"),
            (BANDS_ENV, "two"),
            (BANDS_ENV, "0"), // zero bands is a typo, not a request
            (TELEMETRY_ENV, "fulll"),
        ] {
            let out = run_probe(&[(var, bad)]);
            assert!(!out.status.success(), "{var}={bad} must fail from_env");
            let stderr = String::from_utf8_lossy(&out.stderr);
            assert!(
                stderr.contains(&format!("unrecognised {var}=\"{bad}\"")),
                "{var}={bad}: panic message missing from {stderr}"
            );
        }
    }
}
