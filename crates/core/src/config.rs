//! SLAM system configuration.

use eslam_features::orb::OrbConfig;
use eslam_geometry::lm::LmParams;
use eslam_geometry::pnp::PnpParams;
use eslam_geometry::PinholeCamera;

pub use eslam_backend::{
    BackendConfig, BackendMode, KeyframeCullConfig, LoopClosureConfig, BACKEND_ENV,
};
pub use eslam_telemetry::{TelemetryConfig, TelemetryMode};

/// Hardware-model selection for the front-end stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Pure software execution (the CPU baselines of the paper).
    Software,
    /// The simulated FPGA accelerator: functionally identical, but frame
    /// processing also reports modelled hardware latencies.
    Accelerator,
}

/// Environment variable forcing the dataset prefetch decision: `on`,
/// `off`, or `auto` (the default). When set to `on`/`off` it overrides
/// [`SlamConfig::prefetch`] entirely — the CI matrix uses it, exactly
/// like `ESLAM_MATCH_KERNEL` pins the matcher rung, to run the whole
/// test suite under both the streamed and the synchronous dataset path.
/// An unrecognised value panics so matrix typos fail loudly.
pub const PREFETCH_ENV: &str = "ESLAM_PREFETCH";

/// Whether [`crate::run_sequence`] streams frames through the async
/// double-buffered prefetcher (`eslam_dataset::prefetch`) or pulls them
/// synchronously. Both paths are bit-identical (proven by
/// `tests/prefetch_equivalence.rs`); they differ only in whether frame
/// `k + 1` renders while frame `k` is being tracked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrefetchMode {
    /// Prefetch when it can actually overlap: enabled iff the host
    /// exposes more than one hardware thread.
    #[default]
    Auto,
    /// Always stream through the prefetcher (on a single-core host the
    /// render degenerates to inline execution at the join — correct,
    /// just without overlap).
    On,
    /// Always pull frames synchronously.
    Off,
}

impl PrefetchMode {
    /// Resolves the mode to a decision, honouring [`PREFETCH_ENV`]
    /// first (read once per process, like the matcher-kernel override).
    ///
    /// # Panics
    /// Panics when [`PREFETCH_ENV`] is set to an unrecognised value.
    pub fn resolved(self) -> bool {
        static FORCED: std::sync::OnceLock<Option<bool>> = std::sync::OnceLock::new();
        let forced = *FORCED.get_or_init(|| {
            eslam_features::envopt::forced(PREFETCH_ENV, "auto, on or off", |value| match value {
                "on" | "1" | "true" => Some(true),
                "off" | "0" | "false" => Some(false),
                _ => None,
            })
        });
        match forced {
            Some(decision) => decision,
            None => match self {
                PrefetchMode::On => true,
                PrefetchMode::Off => false,
                PrefetchMode::Auto => eslam_features::pool::available_threads() > 1,
            },
        }
    }
}

/// Environment variable forcing the telemetry mode: `off`, `counters`,
/// `full`, or `auto` (defer to [`SlamConfig::telemetry`]). When set it
/// overrides [`TelemetryConfig::mode`] entirely — the CI matrix uses
/// it, exactly like [`PREFETCH_ENV`], to run the suite under every
/// recording mode. An unrecognised value panics so matrix typos fail
/// loudly.
pub const TELEMETRY_ENV: &str = "ESLAM_TELEMETRY";

/// Resolves the telemetry mode: [`TELEMETRY_ENV`] (read once per
/// process) wins over the configured mode.
///
/// # Panics
/// Panics when [`TELEMETRY_ENV`] is set to an unrecognised value.
pub fn resolved_telemetry(config: TelemetryConfig) -> TelemetryConfig {
    static FORCED: std::sync::OnceLock<Option<TelemetryMode>> = std::sync::OnceLock::new();
    let forced = *FORCED.get_or_init(|| {
        eslam_features::envopt::forced(
            TELEMETRY_ENV,
            "auto, off, counters or full",
            TelemetryMode::parse,
        )
    });
    match forced {
        Some(mode) => config.with_mode(mode),
        None => config,
    }
}

/// Configuration of the [`crate::Slam`] system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlamConfig {
    /// Camera intrinsics.
    pub camera: PinholeCamera,
    /// Feature extraction configuration (descriptor kind, workflow,
    /// pyramid, 1024-feature cap).
    pub orb: OrbConfig,
    /// Maximum Hamming distance for a match to be used by tracking.
    pub matcher_max_distance: u32,
    /// Robust PnP parameters (pose estimation stage).
    pub pnp: PnpParams,
    /// Levenberg-Marquardt parameters (pose optimization stage).
    pub lm: LmParams,
    /// Key-frame translation threshold in metres (§2.1: "translation or
    /// rotation of the camera is larger than a threshold").
    pub keyframe_translation: f64,
    /// Key-frame rotation threshold in radians.
    pub keyframe_rotation: f64,
    /// Frames a map point may stay unmatched before culling (§2.1: map
    /// points "that have not been matched for a long period of time are
    /// deleted").
    pub map_cull_age: usize,
    /// Hard cap on global map size (the BRIEF Matcher descriptor-cache
    /// budget; oldest-unmatched points are evicted beyond it).
    pub max_map_points: usize,
    /// Minimum PnP inliers for a frame to be considered tracked.
    pub min_inliers: usize,
    /// Hardware model: whether frame reports carry the modelled FPGA
    /// latencies of the paper's accelerator. (Renamed from `backend`
    /// when the keyframe backend landed; the timing model selection and
    /// the mapping backend are independent axes.)
    pub hw_model: Backend,
    /// The keyframe backend: covisibility-linked keyframes + windowed
    /// local bundle adjustment, run sync/async per
    /// [`BackendConfig::mode`] (env-forced by [`BACKEND_ENV`], exactly
    /// like the prefetch and matcher-kernel toggles).
    pub backend: BackendConfig,
    /// Use a constant-velocity motion model to seed tracking (extension):
    /// the prior pose is extrapolated from the last inter-frame motion
    /// instead of held constant.
    pub motion_model: bool,
    /// Worker threads for the front-end pool (parallel extraction levels
    /// and matcher rows). `None` sizes the pool to the host's available
    /// parallelism. An explicit `Some(n)` is **clamped** to available
    /// parallelism rather than honoured blindly, and `Some(0)` is
    /// rejected with a panic at [`crate::SlamBuilder::build`] — see
    /// `eslam_features::pool::resolve_thread_count` for the exact rules.
    pub worker_threads: Option<usize>,
    /// Whether [`crate::run_sequence`] overlaps frame production with
    /// tracking via the async double-buffered prefetcher. Overridden by
    /// the [`PREFETCH_ENV`] environment variable when set.
    pub prefetch: PrefetchMode,
    /// Observability configuration: what the telemetry layer records
    /// ([`TelemetryConfig::mode`], overridden by [`TELEMETRY_ENV`]),
    /// the per-frame budget, and the flight-recorder / trace-buffer
    /// sizes. Telemetry observes only — trajectories and stats are
    /// bit-identical under every mode.
    pub telemetry: TelemetryConfig,
}

impl SlamConfig {
    /// The paper's configuration for a TUM fr1-like camera.
    pub fn tum_default() -> Self {
        SlamConfig {
            camera: PinholeCamera::tum_fr1(),
            orb: OrbConfig::default(),
            matcher_max_distance: 64,
            pnp: PnpParams::default(),
            lm: LmParams {
                // Anchor the per-frame pose to the constant-velocity
                // prediction: in weakly-conditioned regimes (small
                // images, shallow parallax) the reprojection cost has a
                // near-flat valley and the prior picks the physically
                // plausible point in it. Well-conditioned solves are
                // unaffected — the reprojection gradient is orders of
                // magnitude steeper. See the quarter-scale conditioning
                // analysis in crates/core/src/system.rs.
                // 400 px²/m²: a 5 cm deviation from the prediction
                // costs 1 px² — decisive inside the flat valley, three
                // orders of magnitude below the data term when the
                // geometry actually constrains the pose.
                motion_prior_weight: 400.0,
                ..LmParams::default()
            },
            keyframe_translation: 0.08,
            keyframe_rotation: 0.12,
            map_cull_age: 45,
            max_map_points: 2304,
            min_inliers: 10,
            hw_model: Backend::Accelerator,
            backend: BackendConfig::default(),
            motion_model: true,
            worker_threads: None,
            prefetch: PrefetchMode::Auto,
            telemetry: TelemetryConfig::default(),
        }
    }

    /// A configuration scaled for smaller test images (camera shrunk by
    /// `1/scale`).
    pub fn scaled_for_tests(scale: f64) -> Self {
        let mut cfg = SlamConfig::tum_default();
        cfg.camera = cfg.camera.scaled(scale);
        cfg
    }
}

impl Default for SlamConfig {
    fn default() -> Self {
        SlamConfig::tum_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_design_point() {
        let cfg = SlamConfig::default();
        assert_eq!(cfg.orb.max_features, 1024);
        assert_eq!(cfg.max_map_points, 2304);
        assert_eq!(cfg.hw_model, Backend::Accelerator);
        assert_eq!(cfg.camera.width, 640);
        // The keyframe backend defaults to the async local-mapping
        // pattern with a sane sliding window.
        assert_eq!(cfg.backend.mode, BackendMode::Async);
        assert!(cfg.backend.window >= 2);
        assert!(cfg.lm.motion_prior_weight > 0.0);
    }

    #[test]
    fn scaled_config_shrinks_camera() {
        let cfg = SlamConfig::scaled_for_tests(4.0);
        assert_eq!(cfg.camera.width, 160);
        assert_eq!(cfg.camera.height, 120);
    }

    #[test]
    fn prefetch_mode_defaults_to_auto() {
        assert_eq!(SlamConfig::default().prefetch, PrefetchMode::Auto);
        assert_eq!(PrefetchMode::default(), PrefetchMode::Auto);
    }

    #[test]
    fn prefetch_resolution_honours_explicit_modes() {
        // The env override is process-wide (OnceLock), so this test can
        // only assert the invariants that hold under every setting:
        // with ESLAM_PREFETCH unset/auto, On/Off are honoured exactly;
        // with a forced value, all three modes resolve identically.
        let on = PrefetchMode::On.resolved();
        let off = PrefetchMode::Off.resolved();
        let auto = PrefetchMode::Auto.resolved();
        let forced = std::env::var(PREFETCH_ENV)
            .ok()
            .map(|v| v.trim().to_ascii_lowercase())
            .filter(|v| !v.is_empty() && v != "auto");
        match forced {
            Some(_) => {
                assert_eq!(on, off, "a forced {PREFETCH_ENV} overrides the config");
                assert_eq!(on, auto);
            }
            None => {
                assert!(on);
                assert!(!off);
                let cores = eslam_features::pool::available_threads();
                assert_eq!(auto, cores > 1);
            }
        }
    }

    #[test]
    fn telemetry_resolution_honours_config_and_env() {
        // Same process-wide OnceLock caveat as the prefetch test: with
        // ESLAM_TELEMETRY unset/auto the configured mode passes through
        // untouched; with a forced value every configured mode resolves
        // to the forced one. Non-mode fields always pass through.
        let config = TelemetryConfig {
            frame_budget_ms: 33.0,
            flight_frames: 7,
            ..TelemetryConfig::default()
        };
        let off = resolved_telemetry(config.with_mode(TelemetryMode::Off));
        let counters = resolved_telemetry(config.with_mode(TelemetryMode::Counters));
        let full = resolved_telemetry(config.with_mode(TelemetryMode::Full));
        for resolved in [&off, &counters, &full] {
            assert_eq!(resolved.frame_budget_ms, 33.0);
            assert_eq!(resolved.flight_frames, 7);
        }
        let forced = std::env::var(TELEMETRY_ENV)
            .ok()
            .map(|v| v.trim().to_ascii_lowercase())
            .filter(|v| !v.is_empty() && v != "auto");
        match forced {
            Some(value) => {
                let mode = TelemetryMode::parse(&value).expect("forced mode parses");
                assert_eq!(
                    off.mode, mode,
                    "a forced {TELEMETRY_ENV} overrides the config"
                );
                assert_eq!(counters.mode, mode);
                assert_eq!(full.mode, mode);
            }
            None => {
                assert_eq!(off.mode, TelemetryMode::Off);
                assert_eq!(counters.mode, TelemetryMode::Counters);
                assert_eq!(full.mode, TelemetryMode::Full);
            }
        }
    }
}
