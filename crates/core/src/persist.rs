//! The atlas binary format: versioned, checksummed, forward-compatible
//! serialization of a complete map snapshot.
//!
//! See `FORMAT.md` at the repository root for the byte-level layout and
//! the versioning policy. The short version:
//!
//! * an 8-byte magic (`b"ESLAMATL"`) and a `u32` format version;
//! * a sequence of self-delimiting **sections**, each
//!   `[u32 tag][u64 len][payload][u32 crc32]` — readers *skip* sections
//!   with unknown tags (forward compatibility: old readers ignore new
//!   data) and verify a CRC-32 over every payload they do consume;
//! * all integers and floats little-endian; `f64` round-trips
//!   bit-exactly.
//!
//! Decoding is **total**: corrupt, truncated or adversarial inputs
//! return a typed [`AtlasError`] — never a panic, and never an
//! attacker-controlled allocation (every element count is validated
//! against the bytes actually remaining before a `Vec` is sized).

use eslam_backend::keyframe::{Keyframe, KeyframeObservation};
use eslam_backend::{CovisibilityGraph, KeyframeStore};
use eslam_features::bow::{Vocabulary, VocabularyNode, VocabularyParts};
use eslam_features::Descriptor;
use eslam_geometry::{Mat3, Se3, Vec2, Vec3};
use std::io::{Read, Write};
use std::path::Path;

use crate::map::{Map, MapPoint, PointObservation};

/// File magic: the first 8 bytes of every atlas file.
pub const ATLAS_MAGIC: [u8; 8] = *b"ESLAMATL";
/// Current format version. Readers accept exactly this version;
/// additive evolution happens through new section tags instead (see
/// `FORMAT.md` for the policy).
pub const ATLAS_VERSION: u32 = 1;

/// Section tags of format version 1.
const TAG_MAP: u32 = 1;
const TAG_KEYFRAMES: u32 = 2;
const TAG_COVISIBILITY: u32 = 3;
const TAG_VOCABULARY: u32 = 4;

/// Everything that can go wrong reading or writing an atlas file.
/// Decoding never panics and never allocates more than the input can
/// justify — malformed files land in one of these variants.
#[derive(Debug)]
pub enum AtlasError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file does not start with [`ATLAS_MAGIC`].
    BadMagic,
    /// The file's format version is not [`ATLAS_VERSION`].
    UnsupportedVersion(u32),
    /// The file ended inside a header, section or value.
    Truncated,
    /// A section's payload does not match its stored CRC-32.
    ChecksumMismatch {
        /// Tag of the corrupted section.
        tag: u32,
    },
    /// A required section is absent.
    MissingSection(&'static str),
    /// A section decoded structurally but violates a semantic
    /// invariant (duplicate landmark ids, cyclic vocabulary, …).
    Corrupt(String),
}

impl std::fmt::Display for AtlasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AtlasError::Io(e) => write!(f, "atlas i/o error: {e}"),
            AtlasError::BadMagic => write!(f, "not an atlas file (bad magic)"),
            AtlasError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported atlas format version {v} (expected {ATLAS_VERSION})"
                )
            }
            AtlasError::Truncated => write!(f, "atlas file is truncated"),
            AtlasError::ChecksumMismatch { tag } => {
                write!(f, "atlas section {tag} failed its checksum")
            }
            AtlasError::MissingSection(name) => {
                write!(f, "atlas file is missing its {name} section")
            }
            AtlasError::Corrupt(why) => write!(f, "atlas file is corrupt: {why}"),
        }
    }
}

impl std::error::Error for AtlasError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AtlasError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for AtlasError {
    fn from(e: std::io::Error) -> Self {
        AtlasError::Io(e)
    }
}

/// The decoded contents of an atlas file — the persisted sections,
/// before derived state (relocalization index, inverted landmark
/// index) is rebuilt on top.
#[derive(Debug, Clone)]
pub struct AtlasContents {
    /// The front-end landmark map.
    pub map: Map,
    /// The keyframe store.
    pub keyframes: KeyframeStore,
    /// The covisibility graph (one node per keyframe).
    pub covisibility: CovisibilityGraph,
    /// The trained vocabulary (with optional idf weights), when the
    /// saved run had one.
    pub vocabulary: Option<Vocabulary>,
}

// ---------------------------------------------------------------- CRC-32

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320), table-driven.
fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    });
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

// ---------------------------------------------------------------- writer

/// Little-endian payload builder.
#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn vec2(&mut self, v: Vec2) {
        self.f64(v.x);
        self.f64(v.y);
    }
    fn vec3(&mut self, v: Vec3) {
        self.f64(v.x);
        self.f64(v.y);
        self.f64(v.z);
    }
    fn descriptor(&mut self, d: &Descriptor) {
        for w in d.words {
            self.u64(w);
        }
    }
    /// Pose as the raw row-major rotation matrix (9 floats) +
    /// translation (3 floats). Deliberately *not* a quaternion: the
    /// Mat3→quat→Mat3 round trip perturbs low-order bits, and the
    /// format promises bit-identical poses across save/load.
    fn se3(&mut self, pose: &Se3) {
        for row in pose.rotation.m {
            for v in row {
                self.f64(v);
            }
        }
        self.vec3(pose.translation);
    }
}

fn encode_map(map: &Map) -> Vec<u8> {
    let mut e = Enc::default();
    e.u64(map.len() as u64);
    for p in map.points() {
        e.u64(p.id);
        e.vec3(p.position);
        e.descriptor(&p.descriptor);
        e.u64(p.created_frame as u64);
        e.u64(p.last_matched_frame as u64);
        e.u64(p.observations.len() as u64);
        for obs in &p.observations {
            e.u64(obs.keyframe as u64);
            e.vec2(obs.pixel);
        }
    }
    e.buf
}

fn encode_keyframes(store: &KeyframeStore) -> Vec<u8> {
    let mut e = Enc::default();
    e.u64(store.len() as u64);
    for kf in store.keyframes() {
        e.u64(kf.frame_index as u64);
        e.f64(kf.timestamp);
        e.se3(&kf.pose_w2c);
        e.u64(kf.observations.len() as u64);
        for obs in &kf.observations {
            e.u64(obs.landmark);
            e.vec2(obs.pixel);
            e.vec3(obs.position);
        }
        e.u64(kf.descriptors.len() as u64);
        for d in &kf.descriptors {
            e.descriptor(d);
        }
    }
    e.buf
}

fn encode_covisibility(graph: &CovisibilityGraph) -> Vec<u8> {
    let mut e = Enc::default();
    let edges = graph.edges();
    e.u64(graph.len() as u64);
    e.u64(edges.len() as u64);
    for (a, b, w) in edges {
        e.u64(a as u64);
        e.u64(b as u64);
        e.u64(w as u64);
    }
    e.buf
}

fn encode_vocabulary(vocab: &Vocabulary) -> Vec<u8> {
    let parts = vocab.to_parts();
    let mut e = Enc::default();
    e.u64(parts.nodes.len() as u64);
    for node in &parts.nodes {
        e.descriptor(&node.centroid);
        // Word id + 1, with 0 = "internal node".
        e.u64(node.word.map_or(0, |w| w as u64 + 1));
        e.u64(node.children.len() as u64);
        for &c in &node.children {
            e.u64(c as u64);
        }
    }
    e.u64(parts.roots.len() as u64);
    for &r in &parts.roots {
        e.u64(r as u64);
    }
    e.u64(parts.words as u64);
    match &parts.idf {
        None => e.u64(0),
        Some(idf) => {
            e.u64(idf.len() as u64);
            for &w in idf {
                e.f64(w);
            }
        }
    }
    e.buf
}

fn push_section(out: &mut Vec<u8>, tag: u32, payload: &[u8]) {
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// Serializes a complete atlas snapshot to its binary form.
pub fn encode_atlas(contents: &AtlasContents) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&ATLAS_MAGIC);
    out.extend_from_slice(&ATLAS_VERSION.to_le_bytes());
    push_section(&mut out, TAG_MAP, &encode_map(&contents.map));
    push_section(
        &mut out,
        TAG_KEYFRAMES,
        &encode_keyframes(&contents.keyframes),
    );
    push_section(
        &mut out,
        TAG_COVISIBILITY,
        &encode_covisibility(&contents.covisibility),
    );
    if let Some(vocab) = &contents.vocabulary {
        push_section(&mut out, TAG_VOCABULARY, &encode_vocabulary(vocab));
    }
    out
}

/// Serializes an atlas snapshot and writes it to `path` (via a
/// same-directory temporary file + rename, so a crash mid-write never
/// leaves a torn atlas behind).
pub fn save_atlas(contents: &AtlasContents, path: &Path) -> Result<(), AtlasError> {
    let bytes = encode_atlas(contents);
    let tmp = path.with_extension("atlas.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

// ---------------------------------------------------------------- reader

/// Bounds-checked little-endian cursor. Every read that would pass the
/// end of the input returns [`AtlasError::Truncated`].
struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Dec<'a> {
        Dec { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], AtlasError> {
        if self.remaining() < n {
            return Err(AtlasError::Truncated);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, AtlasError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, AtlasError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A `u64` count of elements at least `min_size` bytes each,
    /// validated against the remaining input **before** any allocation
    /// is sized by it — a fabricated huge count in a tiny file is a
    /// [`AtlasError::Truncated`], not an OOM.
    fn count(&mut self, min_size: usize) -> Result<usize, AtlasError> {
        let n = self.u64()?;
        if n > (self.remaining() / min_size.max(1)) as u64 {
            return Err(AtlasError::Truncated);
        }
        Ok(n as usize)
    }

    fn usize_checked(&mut self) -> Result<usize, AtlasError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| AtlasError::Corrupt(format!("index {v} overflows usize")))
    }

    fn f64(&mut self) -> Result<f64, AtlasError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn vec2(&mut self) -> Result<Vec2, AtlasError> {
        Ok(Vec2::new(self.f64()?, self.f64()?))
    }

    fn vec3(&mut self) -> Result<Vec3, AtlasError> {
        Ok(Vec3::new(self.f64()?, self.f64()?, self.f64()?))
    }

    fn descriptor(&mut self) -> Result<Descriptor, AtlasError> {
        Ok(Descriptor::from_words([
            self.u64()?,
            self.u64()?,
            self.u64()?,
            self.u64()?,
        ]))
    }

    fn se3(&mut self) -> Result<Se3, AtlasError> {
        let mut m = [[0.0f64; 3]; 3];
        for row in &mut m {
            for v in row.iter_mut() {
                *v = self.f64()?;
            }
        }
        let translation = self.vec3()?;
        Ok(Se3 {
            rotation: Mat3 { m },
            translation,
        })
    }
}

fn corrupt(why: String) -> AtlasError {
    AtlasError::Corrupt(why)
}

fn decode_map(payload: &[u8]) -> Result<Map, AtlasError> {
    let mut d = Dec::new(payload);
    // Each point is at least id + position + descriptor + 2 frames +
    // observation count = 8 + 24 + 32 + 16 + 8 bytes.
    let count = d.count(88)?;
    let mut points = Vec::with_capacity(count);
    for _ in 0..count {
        let id = d.u64()?;
        let position = d.vec3()?;
        let descriptor = d.descriptor()?;
        let created_frame = d.usize_checked()?;
        let last_matched_frame = d.usize_checked()?;
        let obs_count = d.count(24)?;
        let mut observations = Vec::with_capacity(obs_count);
        for _ in 0..obs_count {
            observations.push(PointObservation {
                keyframe: d.usize_checked()?,
                pixel: d.vec2()?,
            });
        }
        points.push(MapPoint {
            id,
            position,
            descriptor,
            created_frame,
            last_matched_frame,
            observations,
        });
    }
    if d.remaining() != 0 {
        return Err(corrupt("trailing bytes in map section".into()));
    }
    Map::from_points(points).map_err(corrupt)
}

fn decode_keyframes(payload: &[u8]) -> Result<KeyframeStore, AtlasError> {
    let mut d = Dec::new(payload);
    // frame_index + timestamp + pose (12 f64) + two counts.
    let count = d.count(128)?;
    let mut keyframes = Vec::with_capacity(count);
    for id in 0..count {
        let frame_index = d.usize_checked()?;
        let timestamp = d.f64()?;
        let pose_w2c = d.se3()?;
        let obs_count = d.count(48)?;
        let mut observations = Vec::with_capacity(obs_count);
        for _ in 0..obs_count {
            observations.push(KeyframeObservation {
                landmark: d.u64()?,
                pixel: d.vec2()?,
                position: d.vec3()?,
            });
        }
        let desc_count = d.count(32)?;
        let mut descriptors = Vec::with_capacity(desc_count);
        for _ in 0..desc_count {
            descriptors.push(d.descriptor()?);
        }
        keyframes.push(Keyframe {
            id,
            frame_index,
            timestamp,
            pose_w2c,
            observations,
            descriptors,
        });
    }
    if d.remaining() != 0 {
        return Err(corrupt("trailing bytes in keyframe section".into()));
    }
    KeyframeStore::from_keyframes(keyframes).map_err(corrupt)
}

fn decode_covisibility(payload: &[u8]) -> Result<CovisibilityGraph, AtlasError> {
    let mut d = Dec::new(payload);
    let nodes = d.usize_checked()?;
    let edge_count = d.count(24)?;
    let mut edges = Vec::with_capacity(edge_count);
    for _ in 0..edge_count {
        edges.push((d.usize_checked()?, d.usize_checked()?, d.usize_checked()?));
    }
    if d.remaining() != 0 {
        return Err(corrupt("trailing bytes in covisibility section".into()));
    }
    CovisibilityGraph::from_edges(nodes, &edges).map_err(corrupt)
}

fn decode_vocabulary(payload: &[u8]) -> Result<Vocabulary, AtlasError> {
    let mut d = Dec::new(payload);
    // centroid + word marker + child count.
    let node_count = d.count(48)?;
    let mut nodes = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        let centroid = d.descriptor()?;
        let word_marker = d.u64()?;
        let word = match word_marker {
            0 => None,
            w => Some(
                u32::try_from(w - 1)
                    .map_err(|_| corrupt(format!("word id {} overflows u32", w - 1)))?,
            ),
        };
        let child_count = d.count(8)?;
        let mut children = Vec::with_capacity(child_count);
        for _ in 0..child_count {
            children.push(d.usize_checked()?);
        }
        nodes.push(VocabularyNode {
            centroid,
            children,
            word,
        });
    }
    let root_count = d.count(8)?;
    let mut roots = Vec::with_capacity(root_count);
    for _ in 0..root_count {
        roots.push(d.usize_checked()?);
    }
    let words = d.usize_checked()?;
    let idf_count = d.count(8)?;
    let idf = if idf_count == 0 {
        None
    } else {
        let mut idf = Vec::with_capacity(idf_count);
        for _ in 0..idf_count {
            idf.push(d.f64()?);
        }
        Some(idf)
    };
    if d.remaining() != 0 {
        return Err(corrupt("trailing bytes in vocabulary section".into()));
    }
    Vocabulary::from_parts(VocabularyParts {
        nodes,
        roots,
        words,
        idf,
    })
    .map_err(corrupt)
}

/// Decodes an atlas from its binary form. Total: every malformed input
/// returns a typed [`AtlasError`].
pub fn decode_atlas(bytes: &[u8]) -> Result<AtlasContents, AtlasError> {
    let mut d = Dec::new(bytes);
    if d.take(8)? != ATLAS_MAGIC {
        return Err(AtlasError::BadMagic);
    }
    let version = d.u32()?;
    if version != ATLAS_VERSION {
        return Err(AtlasError::UnsupportedVersion(version));
    }

    let mut map = None;
    let mut keyframes = None;
    let mut covisibility = None;
    let mut vocabulary = None;
    while d.remaining() > 0 {
        let tag = d.u32()?;
        let len = d.u64()?;
        if len > d.remaining() as u64 {
            return Err(AtlasError::Truncated);
        }
        let payload = d.take(len as usize)?;
        let stored_crc = d.u32()?;
        // Unknown sections are *skipped* without checksum verification
        // (their CRC polynomial may differ in a future version); known
        // sections must verify before they are decoded.
        let known = matches!(
            tag,
            TAG_MAP | TAG_KEYFRAMES | TAG_COVISIBILITY | TAG_VOCABULARY
        );
        if !known {
            continue;
        }
        if crc32(payload) != stored_crc {
            return Err(AtlasError::ChecksumMismatch { tag });
        }
        // A known section may appear at most once — a duplicate means
        // the writer was confused, and "last one wins" would let an
        // attacker shadow a checksummed section with another.
        let slot_taken = match tag {
            TAG_MAP => map.is_some(),
            TAG_KEYFRAMES => keyframes.is_some(),
            TAG_COVISIBILITY => covisibility.is_some(),
            TAG_VOCABULARY => vocabulary.is_some(),
            _ => unreachable!(),
        };
        if slot_taken {
            return Err(corrupt(format!("duplicate section tag {tag}")));
        }
        match tag {
            TAG_MAP => map = Some(decode_map(payload)?),
            TAG_KEYFRAMES => keyframes = Some(decode_keyframes(payload)?),
            TAG_COVISIBILITY => covisibility = Some(decode_covisibility(payload)?),
            TAG_VOCABULARY => vocabulary = Some(decode_vocabulary(payload)?),
            _ => unreachable!(),
        }
    }

    let map = map.ok_or(AtlasError::MissingSection("map"))?;
    let keyframes = keyframes.ok_or(AtlasError::MissingSection("keyframes"))?;
    let covisibility = covisibility.ok_or(AtlasError::MissingSection("covisibility"))?;
    if covisibility.len() != keyframes.len() {
        return Err(corrupt(format!(
            "covisibility graph has {} nodes but the store has {} keyframes",
            covisibility.len(),
            keyframes.len()
        )));
    }
    Ok(AtlasContents {
        map,
        keyframes,
        covisibility,
        vocabulary,
    })
}

/// Reads and decodes an atlas file.
pub fn load_atlas(path: &Path) -> Result<AtlasContents, AtlasError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    decode_atlas(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(tag: u64) -> Descriptor {
        Descriptor::from_words([tag, !tag, tag ^ 0xdead_beef, tag.rotate_left(17)])
    }

    fn sample_contents() -> AtlasContents {
        let mut map = Map::new();
        for i in 0..8u64 {
            map.insert(
                Vec3::new(i as f64 * 0.25, -0.5, 2.0 + i as f64 * 0.01),
                desc(i),
                i as usize,
                0,
                Vec2::new(10.0 + i as f64, 20.0),
            );
        }
        map.record_observation(3, 1, Vec2::new(33.0, 44.0));

        let mut store = KeyframeStore::new();
        for k in 0..3usize {
            let pose = Se3::from_translation(Vec3::new(k as f64 * 0.1, 0.0, 0.0));
            let observations: Vec<KeyframeObservation> = (0..5u64)
                .map(|i| KeyframeObservation {
                    landmark: i,
                    pixel: Vec2::new(i as f64, k as f64),
                    position: Vec3::new(i as f64 * 0.1, 0.2, 2.0),
                })
                .collect();
            let descriptors: Vec<Descriptor> = (0..5u64).map(|i| desc(100 + i)).collect();
            store.push(k * 3, k as f64 / 30.0, pose, observations, descriptors);
        }

        let mut graph = CovisibilityGraph::new();
        for _ in 0..3 {
            graph.add_node();
        }
        graph.accumulate(0, 1, 5);
        graph.accumulate(1, 2, 4);

        let training: Vec<Descriptor> = (0..64).map(desc).collect();
        let mut vocabulary =
            Vocabulary::train(&training, &eslam_features::BowParams::default()).unwrap();
        vocabulary.train_idf(training.chunks(16));

        AtlasContents {
            map,
            keyframes: store,
            covisibility: graph,
            vocabulary: Some(vocabulary),
        }
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let contents = sample_contents();
        let bytes = encode_atlas(&contents);
        let back = decode_atlas(&bytes).expect("decodes");
        assert_eq!(contents.map, back.map);
        assert_eq!(contents.keyframes, back.keyframes);
        assert_eq!(contents.covisibility, back.covisibility);
        assert_eq!(contents.vocabulary, back.vocabulary);
        // Stable ids resume above the persisted maximum.
        let mut reloaded = back.map;
        let next = reloaded.insert(Vec3::ZERO, desc(9), 0, 0, Vec2::new(0.0, 0.0));
        assert_eq!(next, 8, "ids never recycle across save/load");
    }

    #[test]
    fn vocabulary_section_is_optional() {
        let mut contents = sample_contents();
        contents.vocabulary = None;
        let bytes = encode_atlas(&contents);
        let back = decode_atlas(&bytes).expect("decodes");
        assert!(back.vocabulary.is_none());
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let contents = sample_contents();
        let mut bytes = encode_atlas(&contents);
        // Append a section with a future tag; readers of version 1
        // must ignore it entirely.
        push_section(&mut bytes, 0x7777, &[1, 2, 3, 4, 5]);
        let back = decode_atlas(&bytes).expect("unknown tag skipped");
        assert_eq!(contents.map, back.map);
    }

    #[test]
    fn duplicate_sections_are_rejected() {
        let contents = sample_contents();
        let mut bytes = encode_atlas(&contents);
        // Re-append a second (valid, checksummed) MAP section: "last
        // one wins" would let it shadow the first, so the decoder must
        // refuse the file outright.
        push_section(&mut bytes, TAG_MAP, &encode_map(&contents.map));
        assert!(matches!(decode_atlas(&bytes), Err(AtlasError::Corrupt(_))));
    }

    #[test]
    fn bad_magic_and_version_are_typed_errors() {
        let bytes = encode_atlas(&sample_contents());
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xff;
        assert!(matches!(
            decode_atlas(&wrong_magic),
            Err(AtlasError::BadMagic)
        ));
        let mut wrong_version = bytes;
        wrong_version[8] = 99;
        assert!(matches!(
            decode_atlas(&wrong_version),
            Err(AtlasError::UnsupportedVersion(99))
        ));
        assert!(matches!(decode_atlas(&[]), Err(AtlasError::Truncated)));
    }

    #[test]
    fn flipped_payload_bytes_fail_their_checksum() {
        let contents = sample_contents();
        let bytes = encode_atlas(&contents);
        // Flip one byte inside the first section's payload (after
        // magic + version + tag + len = 8 + 4 + 4 + 8 = 24).
        let mut corrupted = bytes;
        corrupted[30] ^= 0x01;
        assert!(matches!(
            decode_atlas(&corrupted),
            Err(AtlasError::ChecksumMismatch { tag: TAG_MAP })
        ));
    }

    #[test]
    fn truncation_never_panics_or_overallocates() {
        // With the optional vocabulary section omitted, every strict
        // prefix cuts a *required* section and must fail cleanly
        // (never panic, never OOM).
        let mut contents = sample_contents();
        let with_vocab = encode_atlas(&contents);
        contents.vocabulary = None;
        let bytes = encode_atlas(&contents);
        for len in 0..bytes.len() {
            assert!(
                decode_atlas(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
        // A cut landing exactly on the section boundary before the
        // trailing optional vocabulary is, by design, a valid file.
        let truncated = decode_atlas(&with_vocab[..bytes.len()]).expect("boundary cut decodes");
        assert!(truncated.vocabulary.is_none());
        // Every other prefix of the vocabulary-bearing file fails too.
        for len in 0..with_vocab.len() {
            if len == bytes.len() {
                continue;
            }
            assert!(
                decode_atlas(&with_vocab[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn fabricated_huge_counts_are_rejected_before_allocating() {
        // A minimal file whose map section claims u64::MAX points.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&ATLAS_MAGIC);
        bytes.extend_from_slice(&ATLAS_VERSION.to_le_bytes());
        let payload = u64::MAX.to_le_bytes();
        push_section(&mut bytes, TAG_MAP, &payload);
        assert!(matches!(decode_atlas(&bytes), Err(AtlasError::Truncated)));
    }

    #[test]
    fn save_and_load_round_trip_through_a_file() {
        let contents = sample_contents();
        let dir = std::env::temp_dir().join("eslam_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.atlas");
        save_atlas(&contents, &path).expect("save");
        let back = load_atlas(&path).expect("load");
        assert_eq!(contents.map, back.map);
        assert_eq!(contents.keyframes, back.keyframes);
        assert_eq!(contents.covisibility, back.covisibility);
        assert_eq!(contents.vocabulary, back.vocabulary);
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            load_atlas(&dir.join("does_not_exist.atlas")),
            Err(AtlasError::Io(_))
        ));
    }
}
