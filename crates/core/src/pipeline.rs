//! Sequence-level timing analysis under the Fig. 7 heterogeneous
//! pipeline, for all three platforms of the paper.
//!
//! Each processed frame's *actual* workload (pyramid pixels, candidate
//! and kept feature counts, map size) feeds the calibrated hardware and
//! CPU models, and the per-frame stage times are scheduled sequentially
//! (CPUs) or pipelined (eSLAM) to produce sequence totals — the
//! "measured" columns of EXPERIMENTS.md.

use crate::system::FrameReport;
use eslam_hw::cpu::{arm_cortex_a9, intel_i7, CpuModel};
use eslam_hw::system::{frame_timing, Schedule, StageTimesMs};

/// Timing summary of one platform over a processed sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformSequenceTiming {
    /// Platform name.
    pub name: &'static str,
    /// Total processing time, ms.
    pub total_ms: f64,
    /// Mean per-frame time, ms.
    pub mean_frame_ms: f64,
    /// Effective frame rate, fps.
    pub fps: f64,
    /// Mean normal-frame time, ms.
    pub mean_normal_ms: f64,
    /// Mean key-frame time, ms (0 when the sequence has none).
    pub mean_keyframe_ms: f64,
    /// Energy consumed over the sequence, mJ.
    pub energy_mj: f64,
    /// Measured wall-clock time spent waiting for frame pixels over the
    /// run (dataset render/load latency, summed from
    /// [`FrameReport::frame_wait_ms`]). Accounted separately from the
    /// modelled compute totals above — it is a property of the dataset
    /// layer, identical for every platform, and collapses toward zero
    /// when the async prefetcher overlaps rendering with tracking.
    pub frame_wait_ms: f64,
}

/// Measured wall-clock timing of one run, split into the time spent
/// *waiting for pixels* versus the time spent *tracking* — the
/// software analogue of the paper's Fig. 7 stage-overlap argument
/// applied to the dataset layer.
///
/// With synchronous frame pulls, `frame_wait_ms` carries the full
/// render/load cost; with the async prefetcher it shrinks to the
/// residual the background render could not hide behind tracking.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SequenceWallTiming {
    /// Total time blocked waiting for frame pixels, ms.
    pub frame_wait_ms: f64,
    /// Total time inside [`crate::Slam::process`], ms.
    pub track_ms: f64,
    /// Mean per-frame wait, ms.
    pub mean_wait_ms: f64,
    /// Mean per-frame tracking time, ms.
    pub mean_track_ms: f64,
}

impl SequenceWallTiming {
    /// Aggregates the measured per-frame wait/track times of a report
    /// stream.
    pub fn from_reports(reports: &[FrameReport]) -> SequenceWallTiming {
        let frame_wait_ms: f64 = reports.iter().map(|r| r.frame_wait_ms).sum();
        let track_ms: f64 = reports.iter().map(|r| r.track_ms).sum();
        let frames = reports.len().max(1) as f64;
        SequenceWallTiming {
            frame_wait_ms,
            track_ms,
            mean_wait_ms: frame_wait_ms / frames,
            mean_track_ms: track_ms / frames,
        }
    }

    /// Total measured wall time (wait + track), ms.
    pub fn total_ms(&self) -> f64 {
        self.frame_wait_ms + self.track_ms
    }

    /// Fraction of the run spent waiting for pixels (0 when nothing was
    /// measured). The overlap metric: synchronous runs sit at the
    /// render/track cost ratio, prefetched runs push this toward 0.
    pub fn wait_fraction(&self) -> f64 {
        let total = self.total_ms();
        if total <= 0.0 {
            0.0
        } else {
            self.frame_wait_ms / total
        }
    }
}

/// Per-frame stage times for the CPU platforms, derived from the frame's
/// actual workload.
fn cpu_stages(report: &FrameReport, cpu: &CpuModel, map_size_hint: usize) -> StageTimesMs {
    let pixels = report.extraction.pixels_processed;
    let pairs = report.extraction.kept as u64 * map_size_hint as u64;
    StageTimesMs {
        fe: cpu.fe_ms(pixels),
        fm: cpu.fm_ms(pairs),
        pe: cpu.pe_ms,
        po: cpu.po_ms,
        mu: cpu.mu_ms,
    }
}

/// Per-frame stage times for eSLAM: accelerator models for FE/FM, ARM
/// host for the geometric stages.
fn eslam_stages(report: &FrameReport) -> StageTimesMs {
    let arm = arm_cortex_a9();
    let hw = report.hw_timing.unwrap_or_default();
    StageTimesMs {
        fe: hw.fe_ms,
        fm: hw.fm_ms,
        pe: arm.pe_ms,
        po: arm.po_ms,
        mu: arm.mu_ms,
    }
}

fn summarize(
    name: &'static str,
    reports: &[FrameReport],
    power_w: f64,
    mut stages_of: impl FnMut(&FrameReport) -> StageTimesMs,
    schedule: Schedule,
) -> PlatformSequenceTiming {
    let mut total = 0.0;
    let mut normal_sum = 0.0;
    let mut normal_n = 0usize;
    let mut key_sum = 0.0;
    let mut key_n = 0usize;
    for r in reports {
        let stages = stages_of(r);
        let ft = frame_timing(&stages, schedule);
        let t = if r.is_keyframe {
            ft.keyframe_ms
        } else {
            ft.normal_ms
        };
        total += t;
        if r.is_keyframe {
            key_sum += t;
            key_n += 1;
        } else {
            normal_sum += t;
            normal_n += 1;
        }
    }
    let frames = reports.len().max(1) as f64;
    PlatformSequenceTiming {
        name,
        total_ms: total,
        mean_frame_ms: total / frames,
        fps: 1000.0 * frames / total.max(1e-9),
        mean_normal_ms: if normal_n > 0 {
            normal_sum / normal_n as f64
        } else {
            0.0
        },
        mean_keyframe_ms: if key_n > 0 {
            key_sum / key_n as f64
        } else {
            0.0
        },
        energy_mj: total * power_w,
        frame_wait_ms: reports.iter().map(|r| r.frame_wait_ms).sum(),
    }
}

/// Computes the ARM / Intel i7 / eSLAM timing summaries for a processed
/// sequence. `map_size_hint` sets the matcher workload for frames
/// (use the mean map size; per-frame map sizes are in the reports).
pub fn sequence_timing(reports: &[FrameReport]) -> [PlatformSequenceTiming; 3] {
    let arm = arm_cortex_a9();
    let i7 = intel_i7();
    let mean_map: usize = if reports.is_empty() {
        0
    } else {
        reports.iter().map(|r| r.map_size).sum::<usize>() / reports.len()
    };
    [
        summarize(
            "ARM",
            reports,
            arm.power_w,
            |r| cpu_stages(r, &arm, mean_map),
            Schedule::Sequential,
        ),
        summarize(
            "Intel i7",
            reports,
            i7.power_w,
            |r| cpu_stages(r, &i7, mean_map),
            Schedule::Sequential,
        ),
        summarize(
            "eSLAM",
            reports,
            eslam_hw::power::eslam_power_w(),
            eslam_stages,
            Schedule::EslamPipeline,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::FrameHwTiming;
    use eslam_features::orb::ExtractionStats;
    use eslam_geometry::Se3;

    fn fake_report(index: usize, keyframe: bool) -> FrameReport {
        FrameReport {
            index,
            timestamp: index as f64 / 30.0,
            pose_c2w: Se3::identity(),
            is_keyframe: keyframe,
            tracking_ok: true,
            relocalized: false,
            raw_matches: 500,
            inliers: 400,
            map_size: 2304,
            extraction: ExtractionStats {
                fast_detections: 4000,
                candidates: 2500,
                kept: 1024,
                descriptors_computed: 2500,
                pixels_processed: 771_112,
            },
            hw_timing: Some(FrameHwTiming {
                fe_ms: 9.1,
                fm_ms: 4.0,
            }),
            frame_wait_ms: 2.5,
            track_ms: 40.0,
            backend_applied: false,
            loop_closed: false,
        }
    }

    #[test]
    fn nominal_sequence_reproduces_table3_shape() {
        // 9 normal + 1 key frame at the paper's nominal workload.
        let reports: Vec<FrameReport> = (0..10).map(|i| fake_report(i, i == 0)).collect();
        let [arm, i7, eslam] = sequence_timing(&reports);
        // Mean normal-frame times approximate Table 3.
        assert!(
            (eslam.mean_normal_ms - 17.9).abs() < 0.2,
            "{}",
            eslam.mean_normal_ms
        );
        assert!(
            (eslam.mean_keyframe_ms - 31.8).abs() < 0.3,
            "{}",
            eslam.mean_keyframe_ms
        );
        assert!(
            (arm.mean_normal_ms - 555.7).abs() < 6.0,
            "{}",
            arm.mean_normal_ms
        );
        assert!(
            (i7.mean_normal_ms - 53.6).abs() < 0.8,
            "{}",
            i7.mean_normal_ms
        );
        // Ordering: eSLAM fastest, ARM slowest; i7 most energy.
        assert!(eslam.total_ms < i7.total_ms);
        assert!(i7.total_ms < arm.total_ms);
        assert!(eslam.energy_mj < arm.energy_mj);
        assert!(arm.energy_mj < i7.energy_mj);
    }

    #[test]
    fn all_keyframes_slow_everything_down() {
        let normal: Vec<FrameReport> = (0..5).map(|i| fake_report(i, false)).collect();
        let keyed: Vec<FrameReport> = (0..5).map(|i| fake_report(i, true)).collect();
        let [_, _, e_normal] = sequence_timing(&normal);
        let [_, _, e_keyed] = sequence_timing(&keyed);
        assert!(e_keyed.total_ms > e_normal.total_ms);
        assert_eq!(e_normal.mean_keyframe_ms, 0.0);
    }

    #[test]
    fn empty_sequence_is_safe() {
        let [arm, _, eslam] = sequence_timing(&[]);
        assert_eq!(arm.total_ms, 0.0);
        assert_eq!(eslam.energy_mj, 0.0);
        assert_eq!(arm.frame_wait_ms, 0.0);
        let wall = SequenceWallTiming::from_reports(&[]);
        assert_eq!(wall.total_ms(), 0.0);
        assert_eq!(wall.wait_fraction(), 0.0);
    }

    #[test]
    fn frame_wait_is_accounted_separately_from_modelled_compute() {
        let reports: Vec<FrameReport> = (0..4).map(|i| fake_report(i, false)).collect();
        let [arm, i7, eslam] = sequence_timing(&reports);
        // The measured dataset wait is a property of the run, not the
        // platform: identical across all three, and not folded into the
        // modelled totals.
        assert_eq!(arm.frame_wait_ms, 10.0);
        assert_eq!(i7.frame_wait_ms, 10.0);
        assert_eq!(eslam.frame_wait_ms, 10.0);
        assert!(eslam.total_ms < arm.total_ms);
    }

    #[test]
    fn wall_timing_splits_wait_from_track() {
        let reports: Vec<FrameReport> = (0..4).map(|i| fake_report(i, i == 0)).collect();
        let wall = SequenceWallTiming::from_reports(&reports);
        assert_eq!(wall.frame_wait_ms, 10.0);
        assert_eq!(wall.track_ms, 160.0);
        assert_eq!(wall.total_ms(), 170.0);
        assert!((wall.mean_wait_ms - 2.5).abs() < 1e-12);
        assert!((wall.mean_track_ms - 40.0).abs() < 1e-12);
        assert!((wall.wait_fraction() - 10.0 / 170.0).abs() < 1e-12);
    }
}
