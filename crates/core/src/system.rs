//! The eSLAM system: the full per-frame loop of Fig. 1, plus the
//! keyframe backend.
//!
//! `Slam::process` runs feature extraction, feature matching, pose
//! estimation (PnP + RANSAC), pose optimization (Levenberg-Marquardt) and
//! — on key frames — map updating, exactly the five stages of the paper.
//! With [`Backend::Accelerator`] the front-end stages also report the
//! modelled FPGA latencies for this frame's actual workload.
//!
//! On top of the per-frame loop sits the keyframe backend
//! (`eslam-backend`): every promoted frame becomes a covisibility-linked
//! keyframe, and a windowed local bundle adjustment jointly refines the
//! recent keyframe poses and their landmarks — inline or asynchronously
//! on the worker pool per [`crate::config::BackendConfig::mode`].
//! Refinements are swapped into the map and trajectory **at the next
//! frame boundary** (the start of the next [`Slam::process`] call, or
//! [`Slam::finish`] at end of sequence), a deterministic application
//! point that makes the async mode bit-identical to the sync one.

use crate::atlas::{Atlas, AtlasState};
use crate::config::{resolved_telemetry, Backend, SlamConfig};
use crate::map::Map;
use crate::tracking::track_frame_with_telemetry;
use eslam_backend::keyframe::KeyframeObservation;
use eslam_backend::{BackendRunner, BackendStats, KeyframeData};
use eslam_dataset::Trajectory;
use eslam_features::orb::{ExtractionStats, OrbExtractor, OrbScratch};
use eslam_geometry::{Se3, Vec2};
use eslam_hw::extractor::{ExtractionWorkload, ExtractorModel};
use eslam_hw::matcher::MatcherModel;
use eslam_image::{DepthImage, GrayImage};
use eslam_telemetry::{Counter, Stage, Telemetry, TelemetrySummary};
use std::sync::Arc;

/// Modelled accelerator latencies for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FrameHwTiming {
    /// ORB Extractor latency, ms.
    pub fe_ms: f64,
    /// BRIEF Matcher latency, ms.
    pub fm_ms: f64,
}

/// Per-frame processing report.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameReport {
    /// Frame index (0-based).
    pub index: usize,
    /// Frame timestamp, seconds.
    pub timestamp: f64,
    /// Estimated camera-to-world pose.
    pub pose_c2w: Se3,
    /// Whether this frame became a key frame.
    pub is_keyframe: bool,
    /// Whether tracking met the inlier threshold.
    pub tracking_ok: bool,
    /// Whether this frame was recovered by the relocalization fallback
    /// (tracking failed under nominal thresholds but succeeded with the
    /// relaxed recovery configuration).
    pub relocalized: bool,
    /// Descriptor matches before geometric checks.
    pub raw_matches: usize,
    /// Geometric inliers.
    pub inliers: usize,
    /// Map size after processing this frame.
    pub map_size: usize,
    /// Extraction workflow counters.
    pub extraction: ExtractionStats,
    /// Modelled accelerator latencies ([`Backend::Accelerator`] only).
    pub hw_timing: Option<FrameHwTiming>,
    /// Measured wall-clock time the caller blocked waiting for this
    /// frame's pixels (dataset render/load/prefetch-join latency).
    /// Filled by [`crate::run_sequence`]; 0 when frames are handed to
    /// [`Slam::process`] directly. Together with
    /// [`FrameReport::track_ms`] this makes the frame-production /
    /// tracking overlap measurable: with prefetch enabled the wait
    /// collapses toward zero while `track_ms` is unchanged.
    pub frame_wait_ms: f64,
    /// Measured wall-clock time of the [`Slam::process`] call for this
    /// frame: the five-stage tracking pipeline plus the backend's
    /// application point — if an async local-BA solve outlasted its
    /// frame, the time spent joining it lands here (and is broken out
    /// in `BackendStats::join_wait_ms`), so per-frame wall reports
    /// never under-state the critical path.
    pub track_ms: f64,
    /// Whether a backend refinement (local BA result) was swapped into
    /// the map/trajectory at the start of this frame's processing.
    pub backend_applied: bool,
    /// Whether a verified loop closure's pose-graph correction was
    /// propagated through the map and trajectory at the start of this
    /// frame's processing.
    pub loop_closed: bool,
}

/// The SLAM system state.
///
/// # Examples
///
/// See the crate-level documentation and `examples/quickstart.rs`.
#[derive(Debug)]
pub struct Slam {
    config: SlamConfig,
    extractor: OrbExtractor,
    /// Reusable extraction buffers: steady-state frames allocate nothing
    /// in the front-end.
    extractor_scratch: OrbScratch,
    extractor_model: ExtractorModel,
    matcher_model: MatcherModel,
    map: Map,
    trajectory: Trajectory,
    /// The trajectory exactly as tracked, never touched by backend
    /// refinements — the "before BA" reference for drift reporting.
    raw_trajectory: Trajectory,
    /// The trajectory with local-BA refinements but **without** loop
    /// corrections — the "before closure" reference that splits the
    /// drift reduction into its BA and loop-closure shares. (Frames
    /// tracked after a closure continue from the corrected pose, so
    /// past the first closure this is a reference, not a counterfactual
    /// no-loop run.)
    ba_trajectory: Trajectory,
    frame_index: usize,
    pose_w2c: Se3,
    /// Last inter-frame motion `T_k ∘ T_{k-1}⁻¹` (world-to-camera), the
    /// constant-velocity predictor.
    velocity: Se3,
    last_keyframe_c2w: Se3,
    keyframes: usize,
    /// The keyframe backend (covisibility graph + windowed local BA);
    /// `None` when the resolved mode is off.
    backend: Option<BackendRunner>,
    /// Publish target for the finished map: [`Slam::finish`] builds a
    /// query-ready [`AtlasState`] and publishes it here. `None` when
    /// the run is not feeding a shared atlas.
    atlas: Option<Arc<Atlas>>,
    /// Telemetry sink shared with the extraction scratch, the backend
    /// runner and (via [`crate::run_sequence`]) the prefetcher. `None`
    /// when the resolved mode is off — the absence of the sink *is* the
    /// zero-cost off implementation.
    telemetry: Option<Arc<Telemetry>>,
}

/// Builder for [`Slam`] — the one way to assemble a system.
///
/// ```
/// use eslam_core::{Slam, SlamConfig};
///
/// let slam = Slam::builder()
///     .config(SlamConfig::scaled_for_tests(4.0))
///     .worker_pool(2)
///     .build();
/// assert!(slam.worker_threads() >= 1);
/// ```
///
/// Attach a shared [`Atlas`] with [`SlamBuilder::atlas`] to make the
/// run a *mapping* session: [`Slam::finish`] then publishes the
/// finished map (landmarks, keyframes, covisibility, offline-trained
/// vocabulary) for concurrent [`crate::session::Session`] readers.
#[derive(Debug, Default)]
#[must_use = "call .build() to assemble the system"]
pub struct SlamBuilder {
    config: SlamConfig,
    atlas: Option<Arc<Atlas>>,
    worker_pool: Option<usize>,
}

impl SlamBuilder {
    /// Replaces the whole configuration (defaults to
    /// [`SlamConfig::default`], the TUM fr1 tuning).
    pub fn config(mut self, config: SlamConfig) -> SlamBuilder {
        self.config = config;
        self
    }

    /// Attaches a shared atlas as the publish target of this run's
    /// finished map.
    pub fn atlas(mut self, atlas: Arc<Atlas>) -> SlamBuilder {
        self.atlas = Some(atlas);
        self
    }

    /// Sizes the persistent front-end worker pool (overrides
    /// `config.worker_threads`; clamped to available parallelism).
    ///
    /// # Panics
    /// `build` panics on `0` — a present-but-empty pool is a
    /// configuration error, not a request for sequential execution.
    pub fn worker_pool(mut self, threads: usize) -> SlamBuilder {
        self.worker_pool = Some(threads);
        self
    }

    /// Assembles the system.
    ///
    /// Builds the persistent front-end worker pool here, sized by
    /// [`SlamBuilder::worker_pool`] (falling back to
    /// `config.worker_threads`, clamped to available parallelism).
    /// Extraction levels and matcher rows reuse this pool on every
    /// frame instead of spawning scoped threads per call.
    pub fn build(self) -> Slam {
        let mut config = self.config;
        if self.worker_pool.is_some() {
            config.worker_threads = self.worker_pool;
        }
        let telemetry = Telemetry::new(resolved_telemetry(config.telemetry));
        let mut extractor_scratch = OrbScratch::with_threads(config.worker_threads);
        extractor_scratch.set_telemetry(telemetry.clone());
        let mut backend = BackendRunner::new(config.backend, config.camera);
        if let Some(runner) = backend.as_mut() {
            runner.set_telemetry(telemetry.clone());
        }
        Slam {
            extractor: OrbExtractor::new(config.orb),
            extractor_scratch,
            extractor_model: ExtractorModel::default(),
            matcher_model: MatcherModel::default(),
            backend,
            telemetry,
            config,
            map: Map::new(),
            trajectory: Trajectory::new(),
            raw_trajectory: Trajectory::new(),
            ba_trajectory: Trajectory::new(),
            frame_index: 0,
            pose_w2c: Se3::identity(),
            velocity: Se3::identity(),
            last_keyframe_c2w: Se3::identity(),
            keyframes: 0,
            atlas: self.atlas,
        }
    }
}

impl Slam {
    /// Starts assembling a system: `Slam::builder().config(..).build()`.
    pub fn builder() -> SlamBuilder {
        SlamBuilder::default()
    }

    /// The active configuration.
    pub fn config(&self) -> &SlamConfig {
        &self.config
    }

    /// The global map.
    pub fn map(&self) -> &Map {
        &self.map
    }

    /// The estimated trajectory so far (camera-to-world poses), with
    /// every applied backend refinement swapped in.
    pub fn trajectory(&self) -> &Trajectory {
        &self.trajectory
    }

    /// The trajectory exactly as tracked, before any backend
    /// refinement — the "before BA" reference for drift reporting.
    pub fn raw_trajectory(&self) -> &Trajectory {
        &self.raw_trajectory
    }

    /// The trajectory with local-BA refinements swapped in but loop
    /// corrections withheld — the "before closure" reference. Identical
    /// to [`Slam::trajectory`] until a loop closes.
    pub fn ba_trajectory(&self) -> &Trajectory {
        &self.ba_trajectory
    }

    /// Number of key frames so far.
    pub fn keyframes(&self) -> usize {
        self.keyframes
    }

    /// The keyframe backend's aggregate diagnostics, when it is
    /// enabled.
    pub fn backend_stats(&self) -> Option<&BackendStats> {
        self.backend.as_ref().map(|b| b.stats())
    }

    /// The keyframe backend's covisibility-linked store, when enabled.
    pub fn backend(&self) -> Option<&eslam_backend::LocalMapper> {
        self.backend.as_ref().map(|b| b.mapper())
    }

    /// The BA-refined keyframe trajectory (camera-to-world poses, one
    /// per keyframe). Empty when the backend is off.
    pub fn keyframe_trajectory(&self) -> Trajectory {
        let mut out = Trajectory::new();
        if let Some(backend) = &self.backend {
            for kf in backend.mapper().store().keyframes() {
                out.push(kf.timestamp, kf.pose_w2c.inverse());
            }
        }
        out
    }

    /// Collects and applies every in-flight backend result — local-BA
    /// refinements *and* pending loop corrections — then, when an
    /// [`Atlas`] is attached ([`SlamBuilder::atlas`]), publishes the
    /// finished map to it for concurrent session readers. Call after
    /// the last frame of a sequence so the final keyframe's BA and any
    /// just-verified closure land in the exported trajectory
    /// ([`crate::run_sequence`] does this for you); [`Slam::process`]
    /// applies pending results at every frame boundary on its own.
    pub fn finish(&mut self) {
        loop {
            let refined = self.apply_backend_refinement();
            let closed = self.apply_loop_corrections();
            if !refined && !closed {
                break;
            }
        }
        if let Some(atlas) = self.atlas.clone() {
            let _span = Telemetry::span_opt(self.telemetry.as_deref(), Stage::AtlasPublish);
            atlas.publish(self.atlas_state());
        }
    }

    /// The telemetry sink of this run, when the resolved mode is not
    /// off. Exposes histograms, counters, the flight recorder and the
    /// exporters (`summary()`, `prometheus()`, `chrome_trace()`).
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// Aggregated per-stage percentiles + counters, when telemetry is
    /// active ([`crate::RunResult`] carries the same summary).
    pub fn telemetry_summary(&self) -> Option<TelemetrySummary> {
        self.telemetry.as_ref().map(|t| t.summary())
    }

    /// Builds a query-ready [`AtlasState`] from the current map: the
    /// landmark map, the backend's keyframe store and covisibility
    /// graph (empty when the backend is off), and a vocabulary trained
    /// **offline** over the full keyframe descriptor corpus with
    /// tf-idf weights fitted per keyframe. This is the state
    /// [`Slam::finish`] publishes to an attached atlas; call it
    /// directly to save a map without sharing it.
    pub fn atlas_state(&self) -> AtlasState {
        let (store, graph) = match &self.backend {
            Some(runner) => (
                runner.mapper().store().clone(),
                runner.mapper().covisibility().clone(),
            ),
            None => (
                eslam_backend::KeyframeStore::new(),
                eslam_backend::CovisibilityGraph::new(),
            ),
        };
        AtlasState::build(
            self.map.clone(),
            store,
            graph,
            &self.config.backend.loop_closure.bow,
        )
        .expect("backend store and covisibility graph are maintained in lockstep")
    }

    /// Deterministic application point of the backend: joins the oldest
    /// pending local-BA solve (if any), swaps its refined landmark
    /// positions and keyframe poses into the map/trajectory, and
    /// re-bases the tracker's current pose on the refined newest
    /// keyframe. Returns whether a refinement was applied.
    fn apply_backend_refinement(&mut self) -> bool {
        let Some(runner) = self.backend.as_mut() else {
            return false;
        };
        let Some(outcome) = runner.take_refinement() else {
            return false;
        };
        for &(id, position) in &outcome.landmarks {
            // Points culled since the snapshot are silently dropped.
            self.map.set_position(id, position);
        }
        for kf in &outcome.keyframes {
            // The estimate trajectory has exactly one pose per frame,
            // so the keyframe's frame index addresses it directly. The
            // raw trajectory keeps the as-tracked pose; the BA
            // reference trajectory takes the refinement (it withholds
            // only loop corrections).
            self.trajectory
                .set_pose(kf.frame_index, kf.pose_w2c.inverse());
            self.ba_trajectory
                .set_pose(kf.frame_index, kf.pose_w2c.inverse());
        }
        if let Some(newest) = outcome.keyframes.last() {
            // The newest window member is the keyframe processed on the
            // previous frame (solves are dispatched at keyframes and
            // collected one frame later), so the tracker's held pose is
            // that keyframe's: re-base it and the keyframe reference on
            // the refined estimate. The velocity stays — it is a
            // frame-to-frame motion estimate, unaffected by the small
            // absolute correction.
            self.pose_w2c = newest.pose_w2c;
            self.last_keyframe_c2w = newest.pose_w2c.inverse();
        }
        true
    }

    /// Deterministic application point of the loop closer: collects
    /// every pending verification outcome and, for each accepted one,
    /// propagates the pose-graph drift correction through the whole
    /// system — re-anchored landmark positions into the map, corrected
    /// keyframe poses into the trajectory (frames between keyframes
    /// ride with the correction of their governing keyframe), and the
    /// tracker's held pose onto the corrected newest keyframe. Returns
    /// whether a correction was applied.
    fn apply_loop_corrections(&mut self) -> bool {
        let Some(runner) = self.backend.as_mut() else {
            return false;
        };
        let mut applied = false;
        while let Some(outcome) = runner.take_loop_closure() {
            if !outcome.accepted || outcome.keyframes.is_empty() {
                continue;
            }
            applied = true;
            for &(id, position) in &outcome.landmarks {
                // Landmarks culled since the snapshot are silently
                // dropped.
                self.map.set_position(id, position);
            }
            // Keyframe frames take their corrected pose exactly; every
            // frame in between rides with the camera-to-world
            // correction `C_k = new_c2w ∘ old_w2c` of the latest
            // preceding keyframe (the snapshot covers all keyframes,
            // and frame 0 is always one, so every frame is governed).
            let keyframes = &outcome.keyframes;
            let mut k = 0usize;
            for f in 0..self.trajectory.len() {
                if f < keyframes[0].frame_index {
                    continue;
                }
                while k + 1 < keyframes.len() && keyframes[k + 1].frame_index <= f {
                    k += 1;
                }
                let kf = &keyframes[k];
                let pose = if kf.frame_index == f {
                    kf.pose_w2c.inverse()
                } else {
                    let correction = kf.pose_w2c.inverse().compose(&kf.old_pose_w2c);
                    correction.compose(&self.trajectory.poses()[f].pose)
                };
                self.trajectory.set_pose(f, pose);
            }
            if let Some(newest) = outcome.keyframes.last() {
                // The loop keyframe was the previous processed frame;
                // the tracker continues from its corrected pose. The
                // velocity is frame-relative and survives the global
                // correction.
                self.pose_w2c = newest.pose_w2c;
                self.last_keyframe_c2w = newest.pose_w2c.inverse();
            }
        }
        applied
    }

    /// Total parallelism of the persistent front-end worker pool (the
    /// clamped resolution of `SlamConfig::worker_threads`).
    pub fn worker_threads(&self) -> usize {
        self.extractor_scratch.pool().threads()
    }

    /// The relaxed configuration used by the relocalization fallback:
    /// a wider Hamming gate, a looser reprojection threshold and a lower
    /// inlier bar.
    fn recovery_config(&self) -> SlamConfig {
        let mut cfg = self.config;
        cfg.matcher_max_distance = (self.config.matcher_max_distance + 24).min(128);
        cfg.pnp.ransac.threshold = self.config.pnp.ransac.threshold * 2.0;
        cfg.pnp.ransac.max_iterations = self.config.pnp.ransac.max_iterations * 2;
        cfg.min_inliers = (self.config.min_inliers * 2 / 3).max(6);
        // When tracking is lost the motion prediction is exactly what
        // failed — anchoring recovery to it would fight the retry.
        cfg.lm.motion_prior_weight = 0.0;
        cfg
    }

    /// Processes one RGB-D frame through the five-stage pipeline.
    ///
    /// Frame boundaries are also the backend's application points: any
    /// local-BA refinement dispatched at the previous keyframe is
    /// collected and swapped in *before* this frame is tracked, so the
    /// map and pose prior this frame sees are the refined ones —
    /// identically in sync and async mode.
    pub fn process(&mut self, timestamp: f64, gray: &GrayImage, depth: &DepthImage) -> FrameReport {
        // The clock starts before the application point: joining an
        // async solve that outlasted its frame is real critical-path
        // time and must show up in `track_ms`.
        let track_start = std::time::Instant::now();
        if let Some(t) = &self.telemetry {
            t.frame_start(self.frame_index, timestamp);
        }
        let mut backend_applied = false;
        while self.apply_backend_refinement() {
            backend_applied = true;
        }
        let loop_closed = self.apply_loop_corrections();
        let features = self
            .extractor
            .extract_with(gray, &mut self.extractor_scratch);
        let extraction = features.stats;
        let frame = self.frame_index;

        let map_size_before = self.map.len();
        let mut relocalized = false;
        let (pose_c2w, tracking_ok, raw_matches, inliers, matched_feats, matched_map) =
            if self.map.is_empty() {
                // Bootstrap: the first frame defines the world origin.
                (Se3::identity(), true, 0, 0, Vec::new(), Vec::new())
            } else {
                // Prior: constant-velocity prediction (or the held pose).
                let prior = if self.config.motion_model {
                    self.velocity.compose(&self.pose_w2c)
                } else {
                    self.pose_w2c
                };
                let pool = self.extractor_scratch.pool();
                let telemetry = self.telemetry.as_deref();
                let mut outcome = track_frame_with_telemetry(
                    &features,
                    &self.map,
                    &prior,
                    &self.config,
                    pool,
                    telemetry,
                );
                if !outcome.ok {
                    // Relocalization fallback: retry with relaxed
                    // matching/geometry gates before declaring the frame
                    // lost.
                    if let Some(t) = telemetry {
                        t.count(Counter::RelocAttempts, 1);
                    }
                    let recovery = self.recovery_config();
                    let retry = track_frame_with_telemetry(
                        &features, &self.map, &prior, &recovery, pool, telemetry,
                    );
                    if retry.ok {
                        outcome = retry;
                        relocalized = true;
                        if let Some(t) = telemetry {
                            t.count(Counter::RelocSuccesses, 1);
                        }
                    }
                }
                let pose_c2w = if outcome.ok {
                    self.velocity = outcome.pose_w2c.compose(&self.pose_w2c.inverse());
                    self.pose_w2c = outcome.pose_w2c;
                    outcome.pose_w2c.inverse()
                } else {
                    // Tracking failure: hold the last pose and reset the
                    // velocity (the prediction is no longer trustworthy).
                    self.velocity = Se3::identity();
                    self.pose_w2c.inverse()
                };
                (
                    pose_c2w,
                    outcome.ok,
                    outcome.raw_matches,
                    outcome.inliers,
                    outcome.matched_feature_indices,
                    outcome.matched_map_indices,
                )
            };

        // Bookkeeping for matched landmarks.
        for &mi in &matched_map {
            self.map.mark_matched(mi, frame);
        }
        if let Some(t) = &self.telemetry {
            t.count(Counter::RawMatches, raw_matches as u64);
            t.count(Counter::MatchInliers, inliers as u64);
            if !tracking_ok {
                t.count(Counter::TrackingFailures, 1);
            }
        }

        // Key-frame decision (§2.1): translation or rotation relative to
        // the last key frame above threshold. The bootstrap frame is
        // always a key frame.
        let rel = self.last_keyframe_c2w.relative_to(&pose_c2w);
        let is_keyframe = self.map.is_empty()
            || (tracking_ok
                && (rel.translation.norm() > self.config.keyframe_translation
                    || rel.rotation_angle() > self.config.keyframe_rotation));

        if is_keyframe {
            let _kf_span = Telemetry::span_opt(self.telemetry.as_deref(), Stage::KeyframePromotion);
            if let Some(t) = &self.telemetry {
                t.count(Counter::KeyframesPromoted, 1);
            }
            // Dense keyframe id: the map's observation lists and the
            // backend's store share this numbering.
            let kf_id = self.keyframes;
            self.keyframes += 1;
            self.last_keyframe_c2w = pose_c2w;
            // Keyframe observations: every matched landmark, then every
            // landmark this keyframe creates (deterministic order — the
            // backend's problem layout depends on it). The matcher is
            // per-query nearest-neighbour without a cross-check, so two
            // features can match the same landmark; one keyframe still
            // observes it once (first match wins) — duplicates would
            // inflate the cull tie-break and misclassify the landmark
            // as multi-view in the local-BA window. The snapshot Vec
            // feeds only the backend, so it stays empty (unallocated)
            // when the backend is off; the map-side bookkeeping runs
            // either way.
            let backend_active = self.backend.is_some();
            let mut observations: Vec<KeyframeObservation> = Vec::new();
            let mut descriptors: Vec<eslam_features::Descriptor> = Vec::new();
            if backend_active {
                observations.reserve(matched_feats.len());
                descriptors.reserve(matched_feats.len());
            }
            let pose_w2c = pose_c2w.inverse();
            let mut seen: std::collections::HashSet<usize> =
                std::collections::HashSet::with_capacity(matched_map.len());
            for (&feat_idx, &map_idx) in matched_feats.iter().zip(&matched_map) {
                if !seen.insert(map_idx) {
                    continue;
                }
                let kp = &features.keypoints[feat_idx];
                let pixel = Vec2::new(kp.x, kp.y);
                self.map.record_observation(map_idx, kf_id, pixel);
                if backend_active {
                    let point = self.map.point(map_idx);
                    observations.push(KeyframeObservation {
                        landmark: point.id,
                        pixel,
                        // Camera-frame snapshot: drift-free 3-D the
                        // loop verifier can PnP against later.
                        position: pose_w2c.transform(point.position),
                    });
                    descriptors.push(features.descriptors[feat_idx]);
                }
            }
            // Map updating: add unmatched features with valid depth.
            let matched: std::collections::HashSet<usize> = matched_feats.iter().copied().collect();
            for (i, kp) in features.keypoints.iter().enumerate() {
                if matched.contains(&i) {
                    continue;
                }
                let (px, py) = (kp.x.round() as i64, kp.y.round() as i64);
                if px < 0 || py < 0 || px >= gray.width() as i64 || py >= gray.height() as i64 {
                    continue;
                }
                if let Some(z) = depth.metres(px as u32, py as u32) {
                    let pixel = Vec2::new(kp.x, kp.y);
                    let cam_pt = self.config.camera.unproject(pixel, z);
                    let world = pose_c2w.transform(cam_pt);
                    let landmark =
                        self.map
                            .insert(world, features.descriptors[i], frame, kf_id, pixel);
                    if backend_active {
                        observations.push(KeyframeObservation {
                            landmark,
                            pixel,
                            position: cam_pt,
                        });
                        descriptors.push(features.descriptors[i]);
                    }
                }
            }
            // Cull stale landmarks and enforce the matcher cache budget.
            let culled = self
                .map
                .cull(frame, self.config.map_cull_age, self.config.max_map_points);
            if let Some(t) = &self.telemetry {
                t.count(Counter::LandmarksCulled, culled as u64);
            }
            // Hand the keyframe to the backend: it wires the
            // covisibility graph and dispatches the windowed local BA
            // (inline, or async on the *global* pool — the same
            // reasoning as the dataset prefetcher: the Slam-owned pool
            // runs the extraction levels and matcher rows, whose
            // help-drain loops would otherwise steal the solve onto
            // the tracking thread mid-batch). Landmark positions are
            // snapshotted post-cull, so dropped points never enter the
            // problem.
            if let Some(runner) = self.backend.as_mut() {
                let map = &self.map;
                runner.on_keyframe(
                    eslam_features::pool::WorkerPool::global(),
                    KeyframeData {
                        frame_index: frame,
                        timestamp,
                        pose_w2c: pose_c2w.inverse(),
                        observations,
                        descriptors,
                    },
                    &mut |id| map.position_of(id),
                );
            }
        }

        let hw_timing = match self.config.hw_model {
            Backend::Software => None,
            Backend::Accelerator => {
                let workload = ExtractionWorkload::from_pyramid(
                    gray.width(),
                    gray.height(),
                    &self.config.orb.pyramid,
                    extraction.candidates as u64,
                    extraction.kept as u64,
                );
                let fe = self
                    .extractor_model
                    .extraction_timing(&workload, self.config.orb.workflow)
                    .total_ms();
                let fm = self
                    .matcher_model
                    .matching_timing(extraction.kept as u64, map_size_before as u64)
                    .total_ms();
                Some(FrameHwTiming {
                    fe_ms: fe,
                    fm_ms: fm,
                })
            }
        };

        self.trajectory.push(timestamp, pose_c2w);
        self.raw_trajectory.push(timestamp, pose_c2w);
        self.ba_trajectory.push(timestamp, pose_c2w);
        self.frame_index += 1;

        let track_ms = track_start.elapsed().as_secs_f64() * 1e3;
        if let Some(t) = &self.telemetry {
            t.frame_end(track_ms);
        }
        FrameReport {
            index: frame,
            timestamp,
            pose_c2w,
            is_keyframe,
            tracking_ok,
            relocalized,
            raw_matches,
            inliers,
            map_size: self.map.len(),
            extraction,
            hw_timing,
            frame_wait_ms: 0.0,
            track_ms,
            backend_applied,
            loop_closed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eslam_dataset::sequence::SequenceSpec;

    fn quarter_scale_sequence(idx: usize, frames: usize) -> eslam_dataset::SyntheticSequence {
        SequenceSpec::paper_sequences(frames, 0.25)[idx].build()
    }

    #[test]
    fn bootstrap_creates_keyframe_and_map() {
        let seq = quarter_scale_sequence(0, 2);
        let mut slam = Slam::builder()
            .config(SlamConfig::scaled_for_tests(4.0))
            .build();
        let f = seq.frame(0);
        let report = slam.process(f.timestamp, &f.gray, &f.depth);
        assert!(report.is_keyframe);
        assert!(report.tracking_ok);
        assert!(report.map_size > 50, "map size {}", report.map_size);
        assert_eq!(report.pose_c2w, Se3::identity());
        assert_eq!(slam.keyframes(), 1);
        // Wall-clock split: `process` measures its own tracking time;
        // the frame wait belongs to the caller (run_sequence) and is
        // zero when frames are handed in directly.
        assert!(report.track_ms > 0.0);
        assert_eq!(report.frame_wait_ms, 0.0);
    }

    #[test]
    fn tracks_second_frame_of_sequence() {
        let seq = quarter_scale_sequence(0, 3);
        let mut slam = Slam::builder()
            .config(SlamConfig::scaled_for_tests(4.0))
            .build();
        for i in 0..2 {
            let f = seq.frame(i);
            let report = slam.process(f.timestamp, &f.gray, &f.depth);
            assert!(report.tracking_ok, "frame {i} lost tracking");
        }
        // The second frame's pose should be near its ground truth,
        // expressed relative to frame 0 (the world origin of the run).
        let gt0 = seq.trajectory.poses()[0].pose;
        let gt1 = seq.trajectory.poses()[1].pose;
        let rel_truth = gt0.relative_to(&gt1); // frame1 in frame0 coords? see below
        let est1 = slam.trajectory().poses()[1].pose;
        // est1 maps frame-1 camera to the world defined by frame 0, which
        // equals gt0⁻¹ ∘ gt1.
        let expect = gt0.inverse().compose(&gt1);
        let t_err = (est1.translation - expect.translation).norm();
        // At quarter scale (160×120, fx ≈ 129) the pose is weakly
        // constrained: the estimate and the ground truth differ by under
        // 0.01 px of RMS reprojection cost, so several cm of translation
        // sit inside a noise-level ambiguity valley. The motion-prior
        // regularizer (`LmParams::motion_prior_weight`) resolves the
        // valley toward the motion prediction, which cut the measured
        // error on this frame from 0.053 m (prior off — the old
        // workaround threshold was 0.06) to 0.0375 m. Bound at 0.045 m:
        // headroom for legitimate RNG-stream changes, tight enough that
        // losing the prior (or real accuracy regressions) fails.
        assert!(t_err < 0.045, "translation error {t_err}");
        let _ = rel_truth;
    }

    #[test]
    fn accelerator_backend_reports_hw_timing() {
        let seq = quarter_scale_sequence(0, 1);
        let mut slam = Slam::builder()
            .config(SlamConfig::scaled_for_tests(4.0))
            .build();
        let f = seq.frame(0);
        let report = slam.process(f.timestamp, &f.gray, &f.depth);
        let hw = report.hw_timing.expect("accelerator backend");
        assert!(hw.fe_ms > 0.0);
        // Quarter-scale frames extract faster than the 9.1 ms VGA budget.
        assert!(hw.fe_ms < 9.1);
    }

    #[test]
    fn software_backend_omits_hw_timing() {
        let seq = quarter_scale_sequence(0, 1);
        let mut cfg = SlamConfig::scaled_for_tests(4.0);
        cfg.hw_model = Backend::Software;
        let mut slam = Slam::builder().config(cfg).build();
        let f = seq.frame(0);
        let report = slam.process(f.timestamp, &f.gray, &f.depth);
        assert!(report.hw_timing.is_none());
    }

    #[test]
    fn trajectory_grows_per_frame() {
        let seq = quarter_scale_sequence(4, 3); // rpy
        let mut slam = Slam::builder()
            .config(SlamConfig::scaled_for_tests(4.0))
            .build();
        for f in seq.frames() {
            slam.process(f.timestamp, &f.gray, &f.depth);
        }
        assert_eq!(slam.trajectory().len(), 3);
    }

    #[test]
    fn motion_model_can_be_disabled() {
        // Both configurations must track this easy sequence; the motion
        // model only changes the prior, not correctness.
        let seq = quarter_scale_sequence(0, 4);
        for motion_model in [true, false] {
            let mut cfg = SlamConfig::scaled_for_tests(4.0);
            cfg.motion_model = motion_model;
            let mut slam = Slam::builder().config(cfg).build();
            for f in seq.frames() {
                let r = slam.process(f.timestamp, &f.gray, &f.depth);
                assert!(r.tracking_ok, "motion_model={motion_model}");
            }
        }
    }

    #[test]
    fn relocalization_flag_off_during_normal_tracking() {
        let seq = quarter_scale_sequence(0, 4);
        let mut slam = Slam::builder()
            .config(SlamConfig::scaled_for_tests(4.0))
            .build();
        for f in seq.frames() {
            let r = slam.process(f.timestamp, &f.gray, &f.depth);
            assert!(!r.relocalized, "frame {} should not need recovery", r.index);
        }
    }

    #[test]
    fn worker_thread_override_is_clamped() {
        let mut cfg = SlamConfig::scaled_for_tests(4.0);
        cfg.worker_threads = Some(10_000);
        let slam = Slam::builder().config(cfg).build();
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(slam.worker_threads(), cores);

        cfg.worker_threads = Some(1);
        assert_eq!(Slam::builder().config(cfg).build().worker_threads(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_worker_threads_rejected() {
        let mut cfg = SlamConfig::scaled_for_tests(4.0);
        cfg.worker_threads = Some(0);
        let _ = Slam::builder().config(cfg).build();
    }

    #[test]
    fn map_respects_capacity() {
        let seq = quarter_scale_sequence(3, 4); // room (wide motion)
        let mut cfg = SlamConfig::scaled_for_tests(4.0);
        cfg.max_map_points = 300;
        cfg.keyframe_translation = 0.0; // every tracked frame is a keyframe
        let mut slam = Slam::builder().config(cfg).build();
        for f in seq.frames() {
            let r = slam.process(f.timestamp, &f.gray, &f.depth);
            assert!(r.map_size <= 300, "map grew to {}", r.map_size);
        }
    }
}
