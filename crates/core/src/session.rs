//! A **Session**: one camera localizing against a shared [`Atlas`].
//!
//! Where [`crate::Slam`] *builds* a map, a `Session` *uses* one: it
//! owns only per-tracker state (feature extractor, scratch buffers,
//! the last pose) and treats the atlas as a read-mostly world shared
//! with any number of sibling sessions. The lifecycle per frame:
//!
//! 1. **refresh** — if the atlas epoch moved since the last frame, the
//!    session re-snapshots (an `Arc` clone; no data copied, no lock
//!    held during localization);
//! 2. **warm track** — with a pose from the previous frame, ordinary
//!    map-based tracking (`crate::tracking::track_frame`) against the
//!    snapshot's landmark map, using the held pose as motion prior;
//! 3. **cold start** — with no pose (first frame, or tracking lost),
//!    BoW relocalization (`eslam_backend::Relocalizer`) against the
//!    snapshot's keyframes, then a tracking refine seeded by the
//!    relocalized pose.
//!
//! Sessions are cheap (one extractor + scratch) and independent: N of
//! them on N threads share one [`Atlas`] without blocking each other
//! or the writer — see `benches/atlas.rs` for the measured scaling.

use std::sync::Arc;

use eslam_backend::RelocalizationConfig;
use eslam_features::orb::{OrbExtractor, OrbScratch};
use eslam_geometry::{Se3, Vec2};
use eslam_image::GrayImage;

use crate::atlas::{Atlas, AtlasState};
use crate::config::SlamConfig;
use crate::tracking::track_frame;

/// One localized frame: where the camera is in the atlas' world frame
/// and how the estimate was obtained.
#[derive(Debug, Clone, PartialEq)]
pub struct Localization {
    /// World-to-camera pose of the frame.
    pub pose_w2c: Se3,
    /// Geometric inliers supporting the estimate.
    pub inliers: usize,
    /// Whether this frame went through cold-start relocalization
    /// (`true`) or warm map-based tracking (`false`).
    pub cold_start: bool,
    /// Atlas epoch the frame localized against.
    pub epoch: u64,
}

impl Localization {
    /// Camera-to-world pose (the camera's position/orientation in the
    /// shared world frame).
    pub fn pose_c2w(&self) -> Se3 {
        self.pose_w2c.inverse()
    }
}

/// A per-camera handle onto a shared [`Atlas`]: extractor state, the
/// current snapshot, and the warm-tracking pose. See the module docs.
#[derive(Debug)]
pub struct Session {
    atlas: Arc<Atlas>,
    config: SlamConfig,
    relocalization: RelocalizationConfig,
    extractor: OrbExtractor,
    scratch: OrbScratch,
    snapshot: Arc<AtlasState>,
    epoch_seen: u64,
    last_pose_w2c: Option<Se3>,
}

impl Session {
    /// Opens a session against `atlas`, snapshotting its current
    /// state.
    pub fn new(atlas: Arc<Atlas>, config: SlamConfig) -> Session {
        let snapshot = atlas.snapshot();
        let epoch_seen = atlas.epoch();
        Session {
            atlas,
            config,
            relocalization: RelocalizationConfig::default(),
            extractor: OrbExtractor::new(config.orb),
            scratch: OrbScratch::with_threads(config.worker_threads),
            snapshot,
            epoch_seen,
            last_pose_w2c: None,
        }
    }

    /// Replaces the cold-start relocalization tuning (builder-style).
    pub fn with_relocalization(mut self, config: RelocalizationConfig) -> Session {
        self.relocalization = config;
        self
    }

    /// The atlas this session localizes against.
    pub fn atlas(&self) -> &Arc<Atlas> {
        &self.atlas
    }

    /// The atlas epoch of the current snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch_seen
    }

    /// Whether the session holds a warm pose (the next frame will try
    /// tracking before relocalization).
    pub fn is_tracking(&self) -> bool {
        self.last_pose_w2c.is_some()
    }

    /// Drops the warm pose: the next frame cold-starts. (Also the
    /// recovery path a caller should take after moving the camera
    /// while paused.)
    pub fn reset(&mut self) {
        self.last_pose_w2c = None;
    }

    /// Localizes one grayscale frame against the shared atlas. Returns
    /// `None` when neither warm tracking nor cold-start relocalization
    /// produced an acceptable pose (the session stays cold and retries
    /// on the next frame).
    pub fn localize(&mut self, gray: &GrayImage) -> Option<Localization> {
        // Pick up a newer world if the writer published one. Stale
        // snapshots stay fully usable — this is freshness, not safety.
        let epoch = self.atlas.epoch();
        if epoch != self.epoch_seen {
            self.snapshot = self.atlas.snapshot();
            self.epoch_seen = epoch;
        }

        let features = self.extractor.extract_with(gray, &mut self.scratch);

        // Warm path: ordinary map-based tracking with the held pose as
        // prior, exactly like `Slam`'s per-frame tracking stage.
        if let Some(prior) = self.last_pose_w2c {
            let outcome = track_frame(
                &features,
                self.snapshot.map(),
                &prior,
                &self.config,
                self.scratch.pool(),
            );
            if outcome.ok {
                self.last_pose_w2c = Some(outcome.pose_w2c);
                return Some(Localization {
                    pose_w2c: outcome.pose_w2c,
                    inliers: outcome.inliers,
                    cold_start: false,
                    epoch: self.epoch_seen,
                });
            }
            // Tracking lost: fall through to relocalization.
            self.last_pose_w2c = None;
        }

        // Cold path: BoW retrieval + PnP against the keyframe store.
        let vocabulary = self.snapshot.vocabulary()?;
        let pixels: Vec<Vec2> = features
            .keypoints
            .iter()
            .map(|kp| Vec2::new(kp.x, kp.y))
            .collect();
        let reloc = self.snapshot.relocalizer().relocalize(
            vocabulary,
            self.snapshot.keyframes(),
            &self.config.camera,
            &features.descriptors,
            &pixels,
            &self.relocalization,
        )?;

        // Refine with a map-tracking pass seeded by the relocalized
        // pose — but only adopt it on strictly stronger geometric
        // support. The raw solve runs against the candidate keyframe's
        // promotion-time *camera-frame* landmark snapshot (drift-free
        // RGB-D measurements); the refine runs against the global map,
        // whose triangulations carry whatever drift the mapping run
        // accumulated. When the keyframe already explains the frame
        // better (more inliers), polishing against the map would trade
        // metric accuracy for map consistency.
        let refine = track_frame(
            &features,
            self.snapshot.map(),
            &reloc.pose_w2c,
            &self.config,
            self.scratch.pool(),
        );
        let (pose_w2c, inliers) = if refine.ok && refine.inliers > reloc.inliers {
            (refine.pose_w2c, refine.inliers)
        } else {
            (reloc.pose_w2c, reloc.inliers)
        };
        self.last_pose_w2c = Some(pose_w2c);
        Some(Localization {
            pose_w2c,
            inliers,
            cold_start: true,
            epoch: self.epoch_seen,
        })
    }
}
