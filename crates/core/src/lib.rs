//! **eslam-core** — the eSLAM RGB-D visual SLAM system.
//!
//! This crate assembles the full pipeline of the paper's Fig. 1 on top of
//! the substrate crates:
//!
//! * **Feature extraction** — `eslam-features` ORB with the paper's
//!   RS-BRIEF descriptor and rescheduled streaming workflow;
//! * **Feature matching** — Hamming brute-force against the global map;
//! * **Pose estimation** — P3P + RANSAC (`eslam-geometry::pnp`);
//! * **Pose optimization** — Levenberg-Marquardt reprojection
//!   minimization (`eslam-geometry::lm`, Eq. 1);
//! * **Map updating** — key-frame-gated landmark insertion and culling,
//!   with stable landmark ids, per-point observation lists and an
//!   incrementally maintained descriptor column;
//! * **Keyframe backend** — every promoted frame becomes a
//!   covisibility-linked keyframe (`eslam-backend`), and a windowed
//!   local bundle adjustment (`eslam_geometry::ba`) jointly refines the
//!   recent keyframe poses and their landmarks, synchronously or
//!   asynchronously on the worker pool
//!   ([`config::BackendConfig::mode`]); refinements swap in at frame
//!   boundaries, so async == sync bit-identically
//!   (`tests/backend_equivalence.rs`);
//! * **Heterogeneous execution model** — with
//!   [`config::Backend::Accelerator`], every frame also reports the
//!   modelled FPGA latencies from `eslam-hw`, and [`pipeline`] schedules
//!   whole sequences under the Fig. 7 pipeline for the ARM / Intel i7 /
//!   eSLAM platform comparison;
//! * **Streaming dataset layer** — [`runner::run_sequence`] accepts any
//!   `eslam_dataset::FrameSource` and, per
//!   [`config::SlamConfig::prefetch`], overlaps frame production with
//!   tracking via the double-buffered async prefetcher (bit-identical
//!   to synchronous pulls; the measured wait/track split is in
//!   [`runner::RunResult::wall`]);
//! * **Persisted, shared maps** — a finished run's map can be saved to
//!   the versioned, checksummed [`persist`] binary format, served to
//!   many concurrent readers through the epoch-snapshotted
//!   [`atlas::Atlas`], and re-entered cold by a [`session::Session`]
//!   via BoW relocalization (`eslam_backend::Relocalizer`).
//!
//! # Environment overrides
//!
//! All process-wide toggles live behind the one typed surface of
//! [`overrides`] ([`overrides::Overrides::from_env`] parses and
//! validates the whole set in one shot):
//!
//! * `ESLAM_MATCH_KERNEL` (`auto`/`scalar`/`popcnt`/`avx2`/`avx512`) —
//!   pins the Hamming-matcher kernel rung
//!   (`eslam_features::matcher::active_kernel`);
//! * `ESLAM_PREFETCH` (`auto`/`on`/`off`) — forces the dataset
//!   prefetch decision over the configured [`config::PrefetchMode`]
//!   ([`config::PREFETCH_ENV`]). CI runs the suite under both forced
//!   values;
//! * `ESLAM_BACKEND` (`auto`/`off`/`sync`/`async`) — forces the
//!   keyframe-backend execution mode over the configured
//!   [`config::BackendConfig::mode`] ([`config::BACKEND_ENV`]). CI
//!   runs the suite under both `sync` and `async`;
//! * `ESLAM_TELEMETRY` (`auto`/`off`/`counters`/`full`) — forces the
//!   telemetry recording mode over the configured
//!   [`config::SlamConfig::telemetry`] ([`config::TELEMETRY_ENV`]).
//!   Telemetry observes only: trajectories are bit-identical under
//!   every mode (`tests/telemetry.rs`);
//! * `ESLAM_ATLAS` (a filesystem path) — names an atlas file for
//!   sessions to load at start ([`overrides::ATLAS_ENV`],
//!   [`atlas::Atlas::load_from_env`]).
//!
//! # Examples
//!
//! Track a short synthetic sequence:
//!
//! ```
//! use eslam_core::{Slam, SlamConfig};
//! use eslam_dataset::sequence::SequenceSpec;
//!
//! // Quarter-scale fr1/xyz keeps the doc test fast.
//! let seq = SequenceSpec::paper_sequences(3, 0.25)[0].build();
//! let mut slam = Slam::builder()
//!     .config(SlamConfig::scaled_for_tests(4.0))
//!     .build();
//! for frame in seq.frames() {
//!     let report = slam.process(frame.timestamp, &frame.gray, &frame.depth);
//!     assert!(report.tracking_ok);
//! }
//! assert_eq!(slam.trajectory().len(), 3);
//! ```
//!
//! Share the finished map with concurrent reader sessions:
//!
//! ```
//! use std::sync::Arc;
//! use eslam_core::{Atlas, Session, Slam, SlamConfig};
//! use eslam_dataset::sequence::SequenceSpec;
//!
//! let seq = SequenceSpec::paper_sequences(3, 0.25)[0].build();
//! let atlas = Arc::new(Atlas::empty());
//! let mut slam = Slam::builder()
//!     .config(SlamConfig::scaled_for_tests(4.0))
//!     .atlas(Arc::clone(&atlas))
//!     .build();
//! for frame in seq.frames() {
//!     slam.process(frame.timestamp, &frame.gray, &frame.depth);
//! }
//! slam.finish(); // publishes the map: epoch 0 → 1
//! assert_eq!(atlas.epoch(), 1);
//!
//! // Any number of sessions localize against the published snapshot.
//! let mut session = Session::new(Arc::clone(&atlas), SlamConfig::scaled_for_tests(4.0));
//! let frame = seq.frames().next().unwrap();
//! let localization = session.localize(&frame.gray);
//! # let _ = localization;
//! ```
//!
//! Or run a whole [`eslam_dataset::FrameSource`] in one call, with the
//! frame-wait / track overlap measured for you:
//!
//! ```
//! use eslam_core::{run_sequence, SlamConfig};
//! use eslam_dataset::sequence::SequenceSpec;
//!
//! let seq = SequenceSpec::paper_sequences(3, 0.25)[0].build();
//! let result = run_sequence(&seq, SlamConfig::scaled_for_tests(4.0));
//! assert_eq!(result.reports.len(), 3);
//! assert!(result.wall.track_ms > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod atlas;
pub mod config;
pub mod map;
pub mod overrides;
pub mod persist;
pub mod pipeline;
pub mod runner;
pub mod session;
pub mod stats;
pub mod system;
pub mod tracking;

/// The telemetry substrate crate, re-exported whole: histograms,
/// flight-recorder timelines, exporters and the event ring.
pub use eslam_telemetry as telemetry;

pub use atlas::{Atlas, AtlasState};
pub use config::{
    Backend, BackendConfig, BackendMode, KeyframeCullConfig, LoopClosureConfig, PrefetchMode,
    SlamConfig, TelemetryConfig, TelemetryMode, BACKEND_ENV, PREFETCH_ENV, TELEMETRY_ENV,
};
pub use map::{Map, MapPoint, PointObservation};
pub use overrides::{Overrides, ATLAS_ENV};
pub use persist::{AtlasContents, AtlasError};
pub use pipeline::{sequence_timing, PlatformSequenceTiming, SequenceWallTiming};
pub use runner::{run_sequence, RunResult, Stage};
pub use session::{Localization, Session};
pub use stats::SequenceStats;
pub use system::{FrameHwTiming, FrameReport, Slam, SlamBuilder};
pub use tracking::{track_frame, TrackingOutcome};
