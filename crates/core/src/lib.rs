//! **eslam-core** — the eSLAM RGB-D visual SLAM system.
//!
//! This crate assembles the full pipeline of the paper's Fig. 1 on top of
//! the substrate crates:
//!
//! * **Feature extraction** — `eslam-features` ORB with the paper's
//!   RS-BRIEF descriptor and rescheduled streaming workflow;
//! * **Feature matching** — Hamming brute-force against the global map;
//! * **Pose estimation** — P3P + RANSAC (`eslam-geometry::pnp`);
//! * **Pose optimization** — Levenberg-Marquardt reprojection
//!   minimization (`eslam-geometry::lm`, Eq. 1);
//! * **Map updating** — key-frame-gated landmark insertion and culling,
//!   with stable landmark ids, per-point observation lists and an
//!   incrementally maintained descriptor column;
//! * **Keyframe backend** — every promoted frame becomes a
//!   covisibility-linked keyframe (`eslam-backend`), and a windowed
//!   local bundle adjustment (`eslam_geometry::ba`) jointly refines the
//!   recent keyframe poses and their landmarks, synchronously or
//!   asynchronously on the worker pool
//!   ([`config::BackendConfig::mode`]); refinements swap in at frame
//!   boundaries, so async == sync bit-identically
//!   (`tests/backend_equivalence.rs`);
//! * **Heterogeneous execution model** — with
//!   [`config::Backend::Accelerator`], every frame also reports the
//!   modelled FPGA latencies from `eslam-hw`, and [`pipeline`] schedules
//!   whole sequences under the Fig. 7 pipeline for the ARM / Intel i7 /
//!   eSLAM platform comparison;
//! * **Streaming dataset layer** — [`runner::run_sequence`] accepts any
//!   `eslam_dataset::FrameSource` and, per
//!   [`config::SlamConfig::prefetch`], overlaps frame production with
//!   tracking via the double-buffered async prefetcher (bit-identical
//!   to synchronous pulls; the measured wait/track split is in
//!   [`runner::RunResult::wall`]).
//!
//! # Environment overrides
//!
//! * `ESLAM_MATCH_KERNEL` (`auto`/`scalar`/`popcnt`/`avx2`/`avx512`) —
//!   pins the Hamming-matcher kernel rung
//!   (`eslam_features::matcher::active_kernel`);
//! * `ESLAM_PREFETCH` (`auto`/`on`/`off`) — forces the dataset
//!   prefetch decision over the configured [`config::PrefetchMode`]
//!   ([`config::PREFETCH_ENV`]). CI runs the suite under both forced
//!   values;
//! * `ESLAM_BACKEND` (`auto`/`off`/`sync`/`async`) — forces the
//!   keyframe-backend execution mode over the configured
//!   [`config::BackendConfig::mode`] ([`config::BACKEND_ENV`]). CI
//!   runs the suite under both `sync` and `async`.
//!
//! # Examples
//!
//! Track a short synthetic sequence:
//!
//! ```
//! use eslam_core::{Slam, SlamConfig};
//! use eslam_dataset::sequence::SequenceSpec;
//!
//! // Quarter-scale fr1/xyz keeps the doc test fast.
//! let seq = SequenceSpec::paper_sequences(3, 0.25)[0].build();
//! let mut slam = Slam::new(SlamConfig::scaled_for_tests(4.0));
//! for frame in seq.frames() {
//!     let report = slam.process(frame.timestamp, &frame.gray, &frame.depth);
//!     assert!(report.tracking_ok);
//! }
//! assert_eq!(slam.trajectory().len(), 3);
//! ```
//!
//! Or run a whole [`eslam_dataset::FrameSource`] in one call, with the
//! frame-wait / track overlap measured for you:
//!
//! ```
//! use eslam_core::{run_sequence, SlamConfig};
//! use eslam_dataset::sequence::SequenceSpec;
//!
//! let seq = SequenceSpec::paper_sequences(3, 0.25)[0].build();
//! let result = run_sequence(&seq, SlamConfig::scaled_for_tests(4.0));
//! assert_eq!(result.reports.len(), 3);
//! assert!(result.wall.track_ms > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod map;
pub mod pipeline;
pub mod runner;
pub mod stats;
pub mod system;
pub mod tracking;

pub use config::{
    Backend, BackendConfig, BackendMode, KeyframeCullConfig, LoopClosureConfig, PrefetchMode,
    SlamConfig, BACKEND_ENV, PREFETCH_ENV,
};
pub use map::{Map, MapPoint, PointObservation};
pub use pipeline::{sequence_timing, PlatformSequenceTiming, SequenceWallTiming};
pub use runner::{run_sequence, RunResult};
pub use stats::SequenceStats;
pub use system::{FrameHwTiming, FrameReport, Slam};
pub use tracking::{track_frame, TrackingOutcome};
