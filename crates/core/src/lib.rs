//! **eslam-core** — the eSLAM RGB-D visual SLAM system.
//!
//! This crate assembles the full pipeline of the paper's Fig. 1 on top of
//! the substrate crates:
//!
//! * **Feature extraction** — `eslam-features` ORB with the paper's
//!   RS-BRIEF descriptor and rescheduled streaming workflow;
//! * **Feature matching** — Hamming brute-force against the global map;
//! * **Pose estimation** — P3P + RANSAC (`eslam-geometry::pnp`);
//! * **Pose optimization** — Levenberg-Marquardt reprojection
//!   minimization (`eslam-geometry::lm`, Eq. 1);
//! * **Map updating** — key-frame-gated landmark insertion and culling;
//! * **Heterogeneous execution model** — with
//!   [`config::Backend::Accelerator`], every frame also reports the
//!   modelled FPGA latencies from `eslam-hw`, and [`pipeline`] schedules
//!   whole sequences under the Fig. 7 pipeline for the ARM / Intel i7 /
//!   eSLAM platform comparison.
//!
//! # Examples
//!
//! Track a short synthetic sequence:
//!
//! ```
//! use eslam_core::{Slam, SlamConfig};
//! use eslam_dataset::sequence::SequenceSpec;
//!
//! // Quarter-scale fr1/xyz keeps the doc test fast.
//! let seq = SequenceSpec::paper_sequences(3, 0.25)[0].build();
//! let mut slam = Slam::new(SlamConfig::scaled_for_tests(4.0));
//! for frame in seq.frames() {
//!     let report = slam.process(frame.timestamp, &frame.gray, &frame.depth);
//!     assert!(report.tracking_ok);
//! }
//! assert_eq!(slam.trajectory().len(), 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod map;
pub mod pipeline;
pub mod runner;
pub mod stats;
pub mod system;
pub mod tracking;

pub use config::{Backend, SlamConfig};
pub use map::{Map, MapPoint};
pub use pipeline::{sequence_timing, PlatformSequenceTiming};
pub use runner::{run_sequence, RunResult};
pub use stats::SequenceStats;
pub use system::{FrameHwTiming, FrameReport, Slam};
pub use tracking::{track_frame, TrackingOutcome};
