//! The global map: 3-D points with BRIEF descriptors.
//!
//! Map updating (§2.1) runs on key frames only: new 3-D points observed
//! in the key frame join the map, and points "that have not been matched
//! for a long period of time" are culled to bound the map (and with it
//! the BRIEF Matcher workload).

use eslam_features::Descriptor;
use eslam_geometry::Vec3;

/// A 3-D landmark with its appearance descriptor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapPoint {
    /// World position.
    pub position: Vec3,
    /// RS-BRIEF descriptor from the creating observation.
    pub descriptor: Descriptor,
    /// Frame index at creation.
    pub created_frame: usize,
    /// Frame index of the most recent successful match.
    pub last_matched_frame: usize,
    /// Number of frames this point has been matched in.
    pub observations: usize,
}

/// The global map.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    points: Vec<MapPoint>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map { points: Vec::new() }
    }

    /// Number of map points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the map holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points, index-aligned with [`Map::descriptors`].
    pub fn points(&self) -> &[MapPoint] {
        &self.points
    }

    /// Point at `index`.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn point(&self, index: usize) -> &MapPoint {
        &self.points[index]
    }

    /// Snapshot of all descriptors (the matcher's train set).
    pub fn descriptors(&self) -> Vec<Descriptor> {
        self.points.iter().map(|p| p.descriptor).collect()
    }

    /// Inserts a new landmark.
    pub fn insert(&mut self, position: Vec3, descriptor: Descriptor, frame: usize) {
        self.points.push(MapPoint {
            position,
            descriptor,
            created_frame: frame,
            last_matched_frame: frame,
            observations: 1,
        });
    }

    /// Records a successful match of point `index` at `frame`.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn mark_matched(&mut self, index: usize, frame: usize) {
        let p = &mut self.points[index];
        p.last_matched_frame = frame;
        p.observations += 1;
    }

    /// Removes points unmatched for more than `max_age` frames, then
    /// enforces `max_points` by evicting the stalest entries. Returns the
    /// number of points removed.
    pub fn cull(&mut self, current_frame: usize, max_age: usize, max_points: usize) -> usize {
        let before = self.points.len();
        self.points
            .retain(|p| current_frame.saturating_sub(p.last_matched_frame) <= max_age);
        if self.points.len() > max_points {
            // Evict least-recently-matched first (ties: fewer observations).
            self.points.sort_by_key(|p| {
                (
                    std::cmp::Reverse(p.last_matched_frame),
                    std::cmp::Reverse(p.observations),
                )
            });
            self.points.truncate(max_points);
        }
        before - self.points.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(tag: u64) -> Descriptor {
        Descriptor::from_words([tag, tag ^ 0xff, 0, 1])
    }

    #[test]
    fn insert_and_query() {
        let mut map = Map::new();
        assert!(map.is_empty());
        map.insert(Vec3::new(1.0, 2.0, 3.0), desc(1), 0);
        map.insert(Vec3::new(4.0, 5.0, 6.0), desc(2), 0);
        assert_eq!(map.len(), 2);
        assert_eq!(map.point(1).position, Vec3::new(4.0, 5.0, 6.0));
        assert_eq!(map.descriptors().len(), 2);
        assert_eq!(map.descriptors()[0], desc(1));
    }

    #[test]
    fn mark_matched_updates_bookkeeping() {
        let mut map = Map::new();
        map.insert(Vec3::ZERO, desc(1), 0);
        map.mark_matched(0, 7);
        assert_eq!(map.point(0).last_matched_frame, 7);
        assert_eq!(map.point(0).observations, 2);
    }

    #[test]
    fn cull_removes_stale_points() {
        let mut map = Map::new();
        map.insert(Vec3::ZERO, desc(1), 0); // stale
        map.insert(Vec3::X, desc(2), 0);
        map.mark_matched(1, 50); // fresh
        let removed = map.cull(60, 30, 100);
        assert_eq!(removed, 1);
        assert_eq!(map.len(), 1);
        assert_eq!(map.point(0).descriptor, desc(2));
    }

    #[test]
    fn cull_enforces_capacity() {
        let mut map = Map::new();
        for i in 0..10 {
            map.insert(Vec3::ZERO, desc(i), i as usize);
        }
        let removed = map.cull(10, 100, 4);
        assert_eq!(removed, 6);
        assert_eq!(map.len(), 4);
        // The most recently matched points survive.
        let youngest: Vec<usize> = map.points().iter().map(|p| p.last_matched_frame).collect();
        assert!(youngest.iter().all(|&f| f >= 6), "{youngest:?}");
    }

    #[test]
    fn cull_keeps_everything_when_fresh() {
        let mut map = Map::new();
        for i in 0..5 {
            map.insert(Vec3::ZERO, desc(i), 10);
        }
        assert_eq!(map.cull(11, 30, 100), 0);
        assert_eq!(map.len(), 5);
    }
}
