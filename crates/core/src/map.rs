//! The global map: 3-D points with BRIEF descriptors and per-point
//! observation lists.
//!
//! Map updating (§2.1) runs on key frames only: new 3-D points observed
//! in the key frame join the map, and points "that have not been matched
//! for a long period of time" are culled to bound the map (and with it
//! the BRIEF Matcher workload).
//!
//! Two structural properties matter to the rest of the system:
//!
//! * **Stable ids** — every point carries a monotonically increasing
//!   [`MapPoint::id`] that survives culling and reordering. The keyframe
//!   backend's observation graph references landmarks by id, so the map
//!   can cull freely without invalidating keyframes, and BA refinements
//!   are swapped back in by id ([`Map::set_position`]).
//! * **A cached descriptor column** — the matcher's train set is kept
//!   index-aligned with the points and maintained incrementally on
//!   insert/cull, so the per-frame tracking path borrows it
//!   ([`Map::descriptors`] returns a slice) instead of collecting a
//!   fresh `Vec` on every frame.

use eslam_features::Descriptor;
use eslam_geometry::{Vec2, Vec3};
use std::collections::HashMap;

/// One keyframe observation of a map point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointObservation {
    /// Id of the observing keyframe (the backend's dense keyframe id).
    pub keyframe: usize,
    /// Pixel location of the observation in that keyframe.
    pub pixel: Vec2,
}

/// A 3-D landmark with its appearance descriptor and observation list.
#[derive(Debug, Clone, PartialEq)]
pub struct MapPoint {
    /// Stable id, unique for the lifetime of the map.
    pub id: u64,
    /// World position (refined in place by the backend's local BA).
    pub position: Vec3,
    /// RS-BRIEF descriptor from the creating observation.
    pub descriptor: Descriptor,
    /// Frame index at creation.
    pub created_frame: usize,
    /// Frame index of the most recent successful match.
    pub last_matched_frame: usize,
    /// Keyframe observations of this point (creation + every keyframe
    /// that matched it) — the raw material of the covisibility graph
    /// and the local-BA problem.
    pub observations: Vec<PointObservation>,
}

/// The global map.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    points: Vec<MapPoint>,
    /// Descriptor column, index-aligned with `points` (the matcher's
    /// train set), maintained incrementally on insert/cull.
    descriptors: Vec<Descriptor>,
    /// Stable id → current index.
    index_of: HashMap<u64, usize>,
    /// Next id to assign.
    next_id: u64,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Number of map points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the map holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points, index-aligned with [`Map::descriptors`].
    pub fn points(&self) -> &[MapPoint] {
        &self.points
    }

    /// Point at `index`.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn point(&self, index: usize) -> &MapPoint {
        &self.points[index]
    }

    /// The descriptor column (the matcher's train set), index-aligned
    /// with [`Map::points`]. A borrowed slice: the column is maintained
    /// incrementally, not rebuilt per call.
    pub fn descriptors(&self) -> &[Descriptor] {
        &self.descriptors
    }

    /// Current index of the point with stable id `id`, if it is still
    /// in the map.
    pub fn index_of(&self, id: u64) -> Option<usize> {
        self.index_of.get(&id).copied()
    }

    /// World position of the point with stable id `id`, if present.
    pub fn position_of(&self, id: u64) -> Option<Vec3> {
        self.index_of(id).map(|i| self.points[i].position)
    }

    /// Inserts a new landmark observed at `pixel` by `keyframe`, and
    /// returns its stable id.
    pub fn insert(
        &mut self,
        position: Vec3,
        descriptor: Descriptor,
        frame: usize,
        keyframe: usize,
        pixel: Vec2,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.index_of.insert(id, self.points.len());
        self.points.push(MapPoint {
            id,
            position,
            descriptor,
            created_frame: frame,
            last_matched_frame: frame,
            observations: vec![PointObservation { keyframe, pixel }],
        });
        self.descriptors.push(descriptor);
        id
    }

    /// Records a successful match of point `index` at `frame` (any
    /// frame, not only keyframes): refreshes the cull clock.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn mark_matched(&mut self, index: usize, frame: usize) {
        self.points[index].last_matched_frame = frame;
    }

    /// Appends a keyframe observation to point `index` (the map-update
    /// path for matched points when a frame is promoted). One keyframe
    /// observes a point at most once: repeat recordings for the same
    /// keyframe are ignored (first wins), so duplicate feature matches
    /// cannot inflate the observation list the cull tie-break and the
    /// covisibility graph are built from. Keyframe ids arrive in
    /// non-decreasing order, so the tail check is sufficient.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn record_observation(&mut self, index: usize, keyframe: usize, pixel: Vec2) {
        let observations = &mut self.points[index].observations;
        if observations.last().map(|o| o.keyframe) == Some(keyframe) {
            return;
        }
        observations.push(PointObservation { keyframe, pixel });
    }

    /// Swaps in a BA-refined position for the point with stable id
    /// `id`. Returns `false` when the point has been culled in the
    /// meantime (the refinement is simply dropped).
    pub fn set_position(&mut self, id: u64, position: Vec3) -> bool {
        match self.index_of(id) {
            Some(index) => {
                self.points[index].position = position;
                true
            }
            None => false,
        }
    }

    /// Removes points unmatched for more than `max_age` frames, then
    /// enforces `max_points` by evicting the stalest entries (ties:
    /// fewer keyframe observations first). Returns the number of points
    /// removed. The descriptor column and the id index are remapped in
    /// the same pass.
    pub fn cull(&mut self, current_frame: usize, max_age: usize, max_points: usize) -> usize {
        let before = self.points.len();
        self.points
            .retain(|p| current_frame.saturating_sub(p.last_matched_frame) <= max_age);
        if self.points.len() > max_points {
            // Evict least-recently-matched first (ties: fewer
            // observations).
            self.points.sort_by_key(|p| {
                (
                    std::cmp::Reverse(p.last_matched_frame),
                    std::cmp::Reverse(p.observations.len()),
                )
            });
            self.points.truncate(max_points);
        }
        let removed = before - self.points.len();
        if removed > 0 {
            self.rebuild_columns();
        }
        removed
    }

    /// Rebuilds a map from deserialized points (the atlas-load path):
    /// the descriptor column and id index are re-derived, and the next
    /// stable id resumes above the largest persisted one (ids never
    /// recycle, even across save/load). The only invariant checked is
    /// id uniqueness; a duplicate returns a description of the
    /// violation so corrupted files surface as typed errors upstream.
    pub fn from_points(points: Vec<MapPoint>) -> Result<Map, String> {
        let mut map = Map {
            next_id: points.iter().map(|p| p.id + 1).max().unwrap_or(0),
            points,
            descriptors: Vec::new(),
            index_of: HashMap::new(),
        };
        map.rebuild_columns();
        if map.index_of.len() != map.points.len() {
            return Err("duplicate stable landmark id".into());
        }
        Ok(map)
    }

    /// Re-derives the descriptor column and the id index from the point
    /// list after a structural mutation.
    fn rebuild_columns(&mut self) {
        self.descriptors.clear();
        self.descriptors
            .extend(self.points.iter().map(|p| p.descriptor));
        self.index_of.clear();
        for (i, p) in self.points.iter().enumerate() {
            self.index_of.insert(p.id, i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(tag: u64) -> Descriptor {
        Descriptor::from_words([tag, tag ^ 0xff, 0, 1])
    }

    fn px(i: u64) -> Vec2 {
        Vec2::new(i as f64, 2.0 * i as f64)
    }

    /// Checks the invariants the rest of the system relies on: the
    /// descriptor column and id index stay aligned with the points.
    fn assert_columns_consistent(map: &Map) {
        assert_eq!(map.descriptors().len(), map.len());
        for (i, p) in map.points().iter().enumerate() {
            assert_eq!(map.descriptors()[i], p.descriptor, "descriptor column @{i}");
            assert_eq!(map.index_of(p.id), Some(i), "id index @{i}");
            assert_eq!(map.position_of(p.id), Some(p.position));
        }
    }

    #[test]
    fn insert_and_query() {
        let mut map = Map::new();
        assert!(map.is_empty());
        let a = map.insert(Vec3::new(1.0, 2.0, 3.0), desc(1), 0, 0, px(1));
        let b = map.insert(Vec3::new(4.0, 5.0, 6.0), desc(2), 0, 0, px(2));
        assert_eq!(map.len(), 2);
        assert_ne!(a, b, "stable ids are unique");
        assert_eq!(map.point(1).position, Vec3::new(4.0, 5.0, 6.0));
        assert_eq!(map.descriptors().len(), 2);
        assert_eq!(map.descriptors()[0], desc(1));
        assert_eq!(map.point(0).observations.len(), 1);
        assert_eq!(map.point(0).observations[0].keyframe, 0);
        assert_columns_consistent(&map);
    }

    #[test]
    fn mark_matched_updates_bookkeeping() {
        let mut map = Map::new();
        map.insert(Vec3::ZERO, desc(1), 0, 0, px(1));
        map.mark_matched(0, 7);
        assert_eq!(map.point(0).last_matched_frame, 7);
        // Plain matches do not grow the observation list; keyframe
        // observations do.
        assert_eq!(map.point(0).observations.len(), 1);
        map.record_observation(0, 3, px(9));
        assert_eq!(map.point(0).observations.len(), 2);
        assert_eq!(map.point(0).observations[1].keyframe, 3);
        // A repeat recording for the same keyframe is ignored (first
        // wins) — duplicate matches cannot inflate the list.
        map.record_observation(0, 3, px(11));
        assert_eq!(map.point(0).observations.len(), 2);
        assert_eq!(map.point(0).observations[1].pixel, px(9));
    }

    #[test]
    fn cull_removes_stale_points() {
        let mut map = Map::new();
        map.insert(Vec3::ZERO, desc(1), 0, 0, px(1)); // stale
        map.insert(Vec3::X, desc(2), 0, 0, px(2));
        map.mark_matched(1, 50); // fresh
        let removed = map.cull(60, 30, 100);
        assert_eq!(removed, 1);
        assert_eq!(map.len(), 1);
        assert_eq!(map.point(0).descriptor, desc(2));
        assert_columns_consistent(&map);
    }

    #[test]
    fn cull_enforces_capacity() {
        let mut map = Map::new();
        for i in 0..10 {
            map.insert(Vec3::ZERO, desc(i), i as usize, 0, px(i));
        }
        let removed = map.cull(10, 100, 4);
        assert_eq!(removed, 6);
        assert_eq!(map.len(), 4);
        // The most recently matched points survive.
        let youngest: Vec<usize> = map.points().iter().map(|p| p.last_matched_frame).collect();
        assert!(youngest.iter().all(|&f| f >= 6), "{youngest:?}");
        assert_columns_consistent(&map);
    }

    #[test]
    fn cull_keeps_everything_when_fresh() {
        let mut map = Map::new();
        for i in 0..5 {
            map.insert(Vec3::ZERO, desc(i), 10, 0, px(i));
        }
        assert_eq!(map.cull(11, 30, 100), 0);
        assert_eq!(map.len(), 5);
        assert_columns_consistent(&map);
    }

    #[test]
    fn cull_everything() {
        // Every point stale and a capacity of zero: both paths at once,
        // down to the empty map, with columns still consistent.
        let mut map = Map::new();
        for i in 0..6 {
            map.insert(Vec3::ZERO, desc(i), 0, 0, px(i));
        }
        let removed = map.cull(100, 10, 0);
        assert_eq!(removed, 6);
        assert!(map.is_empty());
        assert!(map.descriptors().is_empty());
        assert_eq!(map.index_of(0), None);
        // The map is still usable afterwards, and ids keep increasing.
        let id = map.insert(Vec3::X, desc(9), 101, 7, px(9));
        assert_eq!(id, 6, "ids never recycle");
        assert_columns_consistent(&map);
    }

    #[test]
    fn cull_capacity_ties_break_by_observation_count() {
        // Same last_matched_frame everywhere: the tie-break keeps the
        // points with the richest observation lists.
        let mut map = Map::new();
        for i in 0..4 {
            map.insert(Vec3::ZERO, desc(i), 0, 0, px(i));
        }
        // Points 1 and 3 gain extra keyframe observations.
        map.record_observation(1, 1, px(10));
        map.record_observation(3, 1, px(11));
        map.record_observation(3, 2, px(12));
        let removed = map.cull(0, 100, 2);
        assert_eq!(removed, 2);
        let survivors: Vec<u64> = map.points().iter().map(|p| p.id).collect();
        assert_eq!(survivors, vec![3, 1], "most-observed survive, by count");
        assert_columns_consistent(&map);
    }

    #[test]
    fn cull_remaps_indices_and_ids() {
        let mut map = Map::new();
        let ids: Vec<u64> = (0..8)
            .map(|i| map.insert(Vec3::new(i as f64, 0.0, 0.0), desc(i), i as usize, 0, px(i)))
            .collect();
        // Cull the oldest half by age.
        let removed = map.cull(10, 6, 100);
        assert_eq!(removed, 4);
        // Survivors are ids 4..8, remapped to the front.
        for (expect_index, id) in ids[4..].iter().enumerate() {
            assert_eq!(map.index_of(*id), Some(expect_index));
        }
        for id in &ids[..4] {
            assert_eq!(map.index_of(*id), None);
            assert_eq!(map.position_of(*id), None);
        }
        assert_columns_consistent(&map);
    }

    #[test]
    fn set_position_by_stable_id() {
        let mut map = Map::new();
        let a = map.insert(Vec3::ZERO, desc(1), 0, 0, px(1));
        let b = map.insert(Vec3::X, desc(2), 0, 0, px(2));
        // Cull `a` (stale), then refine both: only `b` applies.
        map.mark_matched(1, 50);
        map.cull(60, 30, 100);
        assert!(!map.set_position(a, Vec3::new(9.0, 9.0, 9.0)));
        assert!(map.set_position(b, Vec3::new(1.5, 0.0, 0.0)));
        assert_eq!(map.position_of(b), Some(Vec3::new(1.5, 0.0, 0.0)));
        // Refining a culled point changed nothing.
        assert_eq!(map.len(), 1);
        assert_columns_consistent(&map);
    }
}
