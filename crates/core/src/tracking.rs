//! Per-frame tracking: feature matching → PnP-RANSAC → LM pose
//! optimization (the PE and PO stages of §2.1).

use crate::config::SlamConfig;
use crate::map::Map;
use eslam_features::matcher::match_brute_force_in;
use eslam_features::orb::OrbFeatures;
use eslam_features::pool::WorkerPool;
use eslam_geometry::lm::optimize_pose_with_prior;
use eslam_geometry::pnp::solve_pnp_ransac;
use eslam_geometry::{Se3, Vec2, Vec3};
use eslam_telemetry::{Stage, Telemetry};

/// Outcome of tracking one frame against the map.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackingOutcome {
    /// World-to-camera pose of the frame (inverse of camera-to-world).
    pub pose_w2c: Se3,
    /// Indices into the map for each accepted (inlier) correspondence.
    pub matched_map_indices: Vec<usize>,
    /// Feature indices (aligned with `matched_map_indices`).
    pub matched_feature_indices: Vec<usize>,
    /// Total descriptor matches before geometric verification.
    pub raw_matches: usize,
    /// PnP inliers after RANSAC + LM.
    pub inliers: usize,
    /// Final LM reprojection cost.
    pub final_cost: f64,
    /// Whether tracking met the inlier threshold.
    pub ok: bool,
}

/// Tracks a frame: matches its descriptors against the map, estimates
/// the pose with P3P-RANSAC and polishes it with Levenberg-Marquardt.
///
/// `prior_w2c` (e.g. the previous frame's pose) is the fallback and the
/// LM seed when RANSAC fails or matches are scarce. The descriptor
/// matching stage runs its parallel rows on `pool` (the SLAM system
/// passes its persistent front-end pool; standalone callers can pass
/// [`WorkerPool::global`]).
pub fn track_frame(
    features: &OrbFeatures,
    map: &Map,
    prior_w2c: &Se3,
    config: &SlamConfig,
    pool: &WorkerPool,
) -> TrackingOutcome {
    track_frame_with_telemetry(features, map, prior_w2c, config, pool, None)
}

/// [`track_frame`] with a telemetry sink: the matching, pose-estimation
/// and pose-optimization stages are recorded as spans (full mode only).
/// The outcome is bit-identical with and without a sink.
pub fn track_frame_with_telemetry(
    features: &OrbFeatures,
    map: &Map,
    prior_w2c: &Se3,
    config: &SlamConfig,
    pool: &WorkerPool,
    telemetry: Option<&Telemetry>,
) -> TrackingOutcome {
    // Borrowed descriptor column: the map maintains it incrementally,
    // so steady-state tracking allocates nothing for the train set.
    let matches = {
        let _span = Telemetry::span_opt(telemetry, Stage::Matching);
        match_brute_force_in(
            pool,
            &features.descriptors,
            map.descriptors(),
            config.matcher_max_distance,
        )
    };

    // Build 3-D/2-D correspondences.
    let mut world = Vec::with_capacity(matches.len());
    let mut pixels = Vec::with_capacity(matches.len());
    let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(matches.len());
    for m in &matches {
        let kp = &features.keypoints[m.query];
        world.push(map.point(m.train).position);
        pixels.push(Vec2::new(kp.x, kp.y));
        pairs.push((m.query, m.train));
    }

    let raw_matches = pairs.len();
    let mut pose_w2c = *prior_w2c;
    let mut inlier_set: Vec<usize> = Vec::new();

    if world.len() >= 4 {
        let _span = Telemetry::span_opt(telemetry, Stage::PoseEstimate);
        if let Some(pnp) = solve_pnp_ransac(&world, &pixels, &config.camera, &config.pnp) {
            pose_w2c = pnp.pose;
            inlier_set = pnp.inliers;
        }
    }

    // LM pose optimization on the inliers (or all matches when RANSAC
    // found nothing and we fall back to the prior pose as the seed).
    let (opt_world, opt_pixels): (Vec<Vec3>, Vec<Vec2>) = if inlier_set.is_empty() {
        (world.clone(), pixels.clone())
    } else {
        inlier_set.iter().map(|&i| (world[i], pixels[i])).unzip()
    };
    let mut final_cost = 0.0;
    if opt_world.len() >= 3 {
        let _span = Telemetry::span_opt(telemetry, Stage::PoseOptimize);
        // The PnP estimate seeds the iteration; the motion prediction
        // (`prior_w2c`) anchors the optional motion-prior term that
        // conditions weakly-constrained solves.
        let lm = optimize_pose_with_prior(
            &pose_w2c,
            Some(prior_w2c),
            &opt_world,
            &opt_pixels,
            &config.camera,
            &config.lm,
        );
        pose_w2c = lm.pose;
        final_cost = lm.final_cost;
    }

    // Re-validate inliers under the final pose.
    let threshold = config.pnp.ransac.threshold;
    let mut matched_map_indices = Vec::new();
    let mut matched_feature_indices = Vec::new();
    for (i, (feat_idx, map_idx)) in pairs.iter().enumerate() {
        if let Some(uv) = config.camera.project(pose_w2c.transform(world[i])) {
            if (uv - pixels[i]).norm() < threshold {
                matched_map_indices.push(*map_idx);
                matched_feature_indices.push(*feat_idx);
            }
        }
    }
    let inliers = matched_map_indices.len();

    TrackingOutcome {
        pose_w2c,
        matched_map_indices,
        matched_feature_indices,
        raw_matches,
        inliers,
        final_cost,
        ok: inliers >= config.min_inliers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eslam_features::orb::{ExtractionStats, Keypoint};
    use eslam_features::Descriptor;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Builds a synthetic map + a frame observing it from `truth_c2w`.
    fn synthetic_scene(
        seed: u64,
        n: usize,
        truth_c2w: Se3,
        cfg: &SlamConfig,
    ) -> (Map, OrbFeatures) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut map = Map::new();
        let mut keypoints = Vec::new();
        let mut descriptors = Vec::new();
        let w2c = truth_c2w.inverse();
        while map.len() < n {
            let p = Vec3::new(
                (rng.gen::<f64>() - 0.5) * 4.0,
                (rng.gen::<f64>() - 0.5) * 3.0,
                2.0 + rng.gen::<f64>() * 3.0,
            );
            let cam = w2c.transform(p);
            let uv = match cfg.camera.project(cam) {
                Some(uv) if cfg.camera.in_bounds(uv, 2.0) => uv,
                _ => continue,
            };
            let desc = Descriptor::from_words([
                rng.gen::<u64>(),
                rng.gen::<u64>(),
                rng.gen::<u64>(),
                rng.gen::<u64>(),
            ]);
            map.insert(p, desc, 0, 0, uv);
            keypoints.push(Keypoint {
                x: uv.x,
                y: uv.y,
                level: 0,
                level_x: uv.x as u32,
                level_y: uv.y as u32,
                score: 1.0,
                angle: 0.0,
                label: 0,
            });
            descriptors.push(desc);
        }
        let stats = ExtractionStats {
            candidates: n,
            kept: n,
            descriptors_computed: n,
            ..Default::default()
        };
        (
            map,
            OrbFeatures {
                keypoints,
                descriptors,
                stats,
            },
        )
    }

    #[test]
    fn tracks_exact_observations() {
        let cfg = SlamConfig::tum_default();
        let truth_c2w = Se3::from_translation(Vec3::new(0.1, -0.05, 0.2));
        let (map, features) = synthetic_scene(3, 60, truth_c2w, &cfg);
        let outcome = track_frame(
            &features,
            &map,
            &Se3::identity(),
            &cfg,
            WorkerPool::global(),
        );
        assert!(outcome.ok);
        assert_eq!(outcome.raw_matches, 60);
        assert!(outcome.inliers >= 55);
        let est_c2w = outcome.pose_w2c.inverse();
        // The production config carries the motion prior, and this
        // scene hands it a maximally wrong anchor (identity prior, 23cm
        // true motion): the documented conditioning-for-bias tradeoff
        // costs ~0.5 mm here. In operation the prediction is cm-close,
        // shrinking the bias by orders of magnitude.
        assert!(
            (est_c2w.translation - truth_c2w.translation).norm() < 1e-3,
            "pose error {}",
            (est_c2w.translation - truth_c2w.translation).norm()
        );
        // Without the prior, the pure-data optimum is recovered to
        // sub-0.1 mm, as before.
        let mut pure = cfg;
        pure.lm.motion_prior_weight = 0.0;
        let outcome = track_frame(
            &features,
            &map,
            &Se3::identity(),
            &pure,
            WorkerPool::global(),
        );
        let est_c2w = outcome.pose_w2c.inverse();
        assert!(
            (est_c2w.translation - truth_c2w.translation).norm() < 1e-4,
            "prior-free pose error {}",
            (est_c2w.translation - truth_c2w.translation).norm()
        );
    }

    #[test]
    fn survives_descriptor_outliers() {
        let cfg = SlamConfig::tum_default();
        let truth_c2w = Se3::from_translation(Vec3::new(-0.1, 0.0, 0.1));
        let (map, mut features) = synthetic_scene(5, 80, truth_c2w, &cfg);
        // Corrupt 20 keypoint locations → wrong correspondences.
        for kp in features.keypoints.iter_mut().take(20) {
            kp.x = (kp.x + 200.0) % 600.0;
            kp.y = (kp.y + 150.0) % 440.0;
        }
        let outcome = track_frame(
            &features,
            &map,
            &Se3::identity(),
            &cfg,
            WorkerPool::global(),
        );
        assert!(outcome.ok);
        let est_c2w = outcome.pose_w2c.inverse();
        assert!((est_c2w.translation - truth_c2w.translation).norm() < 1e-3);
        assert!(outcome.inliers >= 55);
        assert!(outcome.inliers <= 62);
    }

    #[test]
    fn empty_map_fails_gracefully() {
        let cfg = SlamConfig::tum_default();
        let (_, features) = synthetic_scene(7, 20, Se3::identity(), &cfg);
        let outcome = track_frame(
            &features,
            &Map::new(),
            &Se3::identity(),
            &cfg,
            WorkerPool::global(),
        );
        assert!(!outcome.ok);
        assert_eq!(outcome.raw_matches, 0);
        assert_eq!(outcome.pose_w2c, Se3::identity());
    }

    #[test]
    fn too_few_matches_returns_prior() {
        let cfg = SlamConfig::tum_default();
        let truth = Se3::from_translation(Vec3::new(0.3, 0.0, 0.0));
        let (map, features) = synthetic_scene(11, 3, truth, &cfg);
        let prior = Se3::from_translation(Vec3::new(9.0, 9.0, 9.0));
        let outcome = track_frame(&features, &map, &prior, &cfg, WorkerPool::global());
        assert!(!outcome.ok, "3 matches cannot satisfy min_inliers");
    }
}
