//! Sequence-level statistics over per-frame reports.
//!
//! Aggregates the [`crate::FrameReport`] stream of a run into the
//! quantities the evaluation section cares about: tracking robustness,
//! key-frame rate, workload characteristics (the M/N counts driving the
//! hardware models), and map evolution.

use crate::system::FrameReport;

/// Aggregate statistics of a processed sequence.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SequenceStats {
    /// Total frames processed.
    pub frames: usize,
    /// Frames where tracking met the inlier threshold.
    pub tracked: usize,
    /// Frames promoted to key frames.
    pub keyframes: usize,
    /// Frames recovered by relocalization.
    pub relocalizations: usize,
    /// Mean raw descriptor matches per frame (excluding bootstrap).
    pub mean_matches: f64,
    /// Mean geometric inliers per frame (excluding bootstrap).
    pub mean_inliers: f64,
    /// Mean NMS-surviving candidates per frame (the paper's M).
    pub mean_candidates: f64,
    /// Mean kept features per frame (the paper's N).
    pub mean_kept: f64,
    /// Final map size.
    pub final_map_size: usize,
    /// Largest map size seen.
    pub peak_map_size: usize,
}

impl SequenceStats {
    /// Computes statistics from a report stream.
    pub fn from_reports(reports: &[FrameReport]) -> SequenceStats {
        let mut stats = SequenceStats {
            frames: reports.len(),
            ..Default::default()
        };
        if reports.is_empty() {
            return stats;
        }
        let mut match_sum = 0.0;
        let mut inlier_sum = 0.0;
        let mut cand_sum = 0.0;
        let mut kept_sum = 0.0;
        let mut non_bootstrap = 0.0;
        for r in reports {
            if r.tracking_ok {
                stats.tracked += 1;
            }
            if r.is_keyframe {
                stats.keyframes += 1;
            }
            if r.relocalized {
                stats.relocalizations += 1;
            }
            if r.index > 0 {
                match_sum += r.raw_matches as f64;
                inlier_sum += r.inliers as f64;
                non_bootstrap += 1.0;
            }
            cand_sum += r.extraction.candidates as f64;
            kept_sum += r.extraction.kept as f64;
            stats.peak_map_size = stats.peak_map_size.max(r.map_size);
        }
        if non_bootstrap > 0.0 {
            stats.mean_matches = match_sum / non_bootstrap;
            stats.mean_inliers = inlier_sum / non_bootstrap;
        }
        stats.mean_candidates = cand_sum / reports.len() as f64;
        stats.mean_kept = kept_sum / reports.len() as f64;
        stats.final_map_size = reports.last().map_or(0, |r| r.map_size);
        stats
    }

    /// Fraction of frames tracked successfully.
    pub fn tracking_ratio(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.tracked as f64 / self.frames as f64
        }
    }

    /// Fraction of frames promoted to key frames (drives the Table 3
    /// normal-vs-key frame mix).
    pub fn keyframe_ratio(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.keyframes as f64 / self.frames as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::FrameHwTiming;
    use eslam_features::orb::ExtractionStats;
    use eslam_geometry::Se3;

    fn report(index: usize, ok: bool, kf: bool, reloc: bool, map: usize) -> FrameReport {
        FrameReport {
            index,
            timestamp: index as f64,
            pose_c2w: Se3::identity(),
            is_keyframe: kf,
            tracking_ok: ok,
            relocalized: reloc,
            // remaining workload fields below
            raw_matches: 100,
            inliers: 80,
            map_size: map,
            extraction: ExtractionStats {
                candidates: 500,
                kept: 300,
                ..Default::default()
            },
            hw_timing: Some(FrameHwTiming::default()),
            frame_wait_ms: 0.0,
            track_ms: 0.0,
            backend_applied: false,
            loop_closed: false,
        }
    }

    #[test]
    fn empty_reports() {
        let s = SequenceStats::from_reports(&[]);
        assert_eq!(s.frames, 0);
        assert_eq!(s.tracking_ratio(), 0.0);
        assert_eq!(s.keyframe_ratio(), 0.0);
    }

    #[test]
    fn aggregates_counts() {
        let reports = vec![
            report(0, true, true, false, 100),
            report(1, true, false, false, 100),
            report(2, false, false, false, 100),
            report(3, true, true, true, 250),
            report(4, true, false, false, 200),
        ];
        let s = SequenceStats::from_reports(&reports);
        assert_eq!(s.frames, 5);
        assert_eq!(s.tracked, 4);
        assert_eq!(s.keyframes, 2);
        assert_eq!(s.relocalizations, 1);
        assert_eq!(s.final_map_size, 200);
        assert_eq!(s.peak_map_size, 250);
        assert!((s.tracking_ratio() - 0.8).abs() < 1e-12);
        assert!((s.keyframe_ratio() - 0.4).abs() < 1e-12);
        // Bootstrap frame excluded from matching means.
        assert!((s.mean_matches - 100.0).abs() < 1e-12);
        assert!((s.mean_inliers - 80.0).abs() < 1e-12);
        assert!((s.mean_candidates - 500.0).abs() < 1e-12);
        assert!((s.mean_kept - 300.0).abs() < 1e-12);
    }
}
