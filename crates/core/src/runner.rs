//! One-call sequence evaluation: run the SLAM system over any
//! [`FrameSource`] and collect everything the experiments need
//! (reports, trajectories, ATE, statistics, platform timing).
//!
//! The runner is where the paper's stage-overlap idea reaches the
//! dataset layer: with [`SlamConfig::prefetch`] resolved on (see
//! [`crate::config::PrefetchMode`] and the `ESLAM_PREFETCH` override),
//! frame `k + 1` renders on a background worker of the shared
//! [`WorkerPool`] while frame `k` is being tracked, and the per-frame
//! reports record the *measured* wait-versus-track split so the overlap
//! is visible in [`RunResult::wall`]. Both paths produce bit-identical
//! results (`tests/prefetch_equivalence.rs`).

use crate::config::SlamConfig;
use crate::pipeline::{sequence_timing, PlatformSequenceTiming, SequenceWallTiming};
use crate::stats::SequenceStats;
use crate::system::{FrameReport, Slam};
use eslam_backend::BackendStats;
use eslam_dataset::eval::{absolute_trajectory_error, AteResult};
use eslam_dataset::prefetch::with_prefetch_telemetry;
use eslam_dataset::source::FrameSource;
use eslam_dataset::{Frame, Trajectory};
use eslam_features::pool::WorkerPool;
use eslam_telemetry::{Stage as TelemetryStage, TelemetrySummary};
use std::time::Instant;

/// Everything produced by one SLAM run over a sequence.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Per-frame reports.
    pub reports: Vec<FrameReport>,
    /// Estimated trajectory (world = first camera frame), with every
    /// backend refinement swapped in (the run is
    /// [`Slam::finish`]ed, so the final keyframe's BA is included).
    pub estimate: Trajectory,
    /// The trajectory exactly as tracked, before any backend
    /// refinement — identical to `estimate` when the backend is off.
    pub raw_estimate: Trajectory,
    /// The trajectory with local-BA refinements but loop corrections
    /// withheld — identical to `estimate` until a loop closes, so the
    /// BA share and the closure share of the drift reduction are
    /// separately visible.
    pub ba_estimate: Trajectory,
    /// The BA-refined keyframe trajectory (one pose per keyframe;
    /// empty when the backend is off).
    pub keyframes: Trajectory,
    /// Ground truth re-based to the first camera frame (empty when the
    /// source has none).
    pub ground_truth: Trajectory,
    /// ATE of the (refined) estimate against the re-based ground
    /// truth, if computable.
    pub ate: Option<AteResult>,
    /// ATE of the raw (pre-refinement) estimate — the "before BA"
    /// number for drift reporting.
    pub raw_ate: Option<AteResult>,
    /// ATE of the BA-only estimate — the "before closure" number; equal
    /// to `ate` when no loop closed.
    pub ba_ate: Option<AteResult>,
    /// Aggregate statistics.
    pub stats: SequenceStats,
    /// Keyframe-backend diagnostics (`None` when the backend is off).
    pub backend: Option<BackendStats>,
    /// Measured wall-clock frame-wait vs tracking split of this run.
    pub wall: SequenceWallTiming,
    /// Whether frames were streamed through the async prefetcher.
    pub prefetched: bool,
    /// Telemetry rollup of the run — per-stage p50/p95/p99/max
    /// latencies (full mode) and every pipeline counter. `None` when
    /// the resolved telemetry mode is off.
    pub telemetry: Option<TelemetrySummary>,
}

/// The refinement stage of an estimate: every run carries its
/// trajectory at three points of the pipeline, and [`RunResult`]'s
/// accessors select between them with one of these instead of a
/// per-stage method zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Exactly as tracked — before any backend refinement.
    Raw,
    /// With local-BA refinements swapped in, loop corrections
    /// withheld.
    Ba,
    /// Fully refined: local BA *and* loop-closure corrections (the
    /// headline estimate).
    Closed,
}

impl RunResult {
    /// The estimated trajectory at `stage`. `Stage::Closed` is the
    /// headline estimate; `Raw` and `Ba` are the drift-reporting
    /// references (identical to it when no refinement, respectively no
    /// closure, was applied).
    pub fn trajectory(&self, stage: Stage) -> &Trajectory {
        match stage {
            Stage::Raw => &self.raw_estimate,
            Stage::Ba => &self.ba_estimate,
            Stage::Closed => &self.estimate,
        }
    }

    /// ATE of the `stage` estimate against the re-based ground truth,
    /// if computable.
    pub fn stage_ate(&self, stage: Stage) -> Option<AteResult> {
        match stage {
            Stage::Raw => self.raw_ate,
            Stage::Ba => self.ba_ate,
            Stage::Closed => self.ate,
        }
    }

    /// ATE rmse of the `stage` estimate in centimetres (the Fig. 8
    /// unit), or `None`.
    pub fn ate_rmse_cm(&self, stage: Stage) -> Option<f64> {
        self.stage_ate(stage).map(|a| a.stats.rmse * 100.0)
    }

    /// Number of loop closures applied during the run.
    pub fn loops_closed(&self) -> usize {
        self.backend.map_or(0, |b| b.loops_closed)
    }

    /// Platform timing summaries (ARM / i7 / eSLAM) for this run.
    pub fn platform_timing(&self) -> [PlatformSequenceTiming; 3] {
        sequence_timing(&self.reports)
    }
}

/// Runs the SLAM system over every frame of `source` with `config`.
///
/// Accepts any [`FrameSource`] — synthetic sequences, disk datasets,
/// noise-augmented wrappers. Frames are either pulled synchronously or
/// streamed through the double-buffered async prefetcher, per
/// `config.prefetch` (forceable with the `ESLAM_PREFETCH` environment
/// variable); the two paths are bit-identical. Either way a recycled
/// [`Frame`] buffer pair keeps the steady-state dataset layer
/// allocation-free, and each report's
/// [`frame_wait_ms`](FrameReport::frame_wait_ms) records how long the
/// pipeline actually blocked waiting for pixels.
///
/// The returned ground truth is re-based so its first pose is the
/// identity, matching the estimate's world convention.
pub fn run_sequence<S: FrameSource + Sync>(source: &S, config: SlamConfig) -> RunResult {
    let mut slam = Slam::builder().config(config).build();
    let prefetched = config.prefetch.resolved();
    let mut reports = Vec::with_capacity(source.len());
    // Shared sink: the prefetcher records render spans into the same
    // telemetry the Slam system and its backend record into. The wait
    // measurement itself stays the plain `Instant` pair — telemetry
    // mirrors it into the `frame_wait` histogram without touching the
    // report values.
    let telemetry = slam.telemetry().cloned();

    if prefetched {
        // Streamed path: the prefetcher renders ahead on the shared
        // global pool (the Slam-owned pool runs the extraction levels
        // and matcher rows; a long-lived render job must not occupy one
        // of its workers mid-batch).
        with_prefetch_telemetry(source, WorkerPool::global(), telemetry.clone(), |stream| {
            loop {
                let wait_start = Instant::now();
                let Some(frame) = stream.next_frame() else {
                    break;
                };
                let wait_ms = wait_start.elapsed().as_secs_f64() * 1e3;
                if let Some(t) = &telemetry {
                    t.record_since(TelemetryStage::FrameWait, wait_start);
                }
                let mut report = slam.process(frame.timestamp, &frame.gray, &frame.depth);
                report.frame_wait_ms = wait_ms;
                reports.push(report);
            }
        });
    } else {
        // Synchronous path: render on demand into one recycled buffer.
        let mut frame = Frame::buffer();
        for index in 0..source.len() {
            let wait_start = Instant::now();
            source.frame_into(index, &mut frame);
            let wait_ms = wait_start.elapsed().as_secs_f64() * 1e3;
            if let Some(t) = &telemetry {
                t.record_since(TelemetryStage::FrameWait, wait_start);
            }
            let mut report = slam.process(frame.timestamp, &frame.gray, &frame.depth);
            report.frame_wait_ms = wait_ms;
            reports.push(report);
        }
    }

    // Collect the backend's in-flight refinement (if any) so the final
    // keyframe's BA lands in the exported trajectory.
    slam.finish();

    let mut ground_truth = Trajectory::new();
    if let Some(gt) = source.ground_truth() {
        if let Some(first) = gt.poses().first() {
            let base = first.pose.inverse();
            for tp in gt.poses() {
                ground_truth.push(tp.timestamp, base.compose(&tp.pose));
            }
        }
    }
    let estimate = slam.trajectory().clone();
    let raw_estimate = slam.raw_trajectory().clone();
    let ba_estimate = slam.ba_trajectory().clone();
    let keyframes = slam.keyframe_trajectory();
    let ate = absolute_trajectory_error(&estimate, &ground_truth);
    // Unless a refinement was actually applied, the raw trajectory IS
    // the estimate; reuse the alignment instead of running Umeyama
    // twice. Same for the BA-only reference, which only diverges once
    // a loop closes.
    let raw_ate = if slam.backend_stats().is_some_and(|s| s.applied > 0) {
        absolute_trajectory_error(&raw_estimate, &ground_truth)
    } else {
        ate
    };
    let ba_ate = if slam.backend_stats().is_some_and(|s| s.loops_closed > 0) {
        absolute_trajectory_error(&ba_estimate, &ground_truth)
    } else {
        ate
    };
    let stats = SequenceStats::from_reports(&reports);
    let wall = SequenceWallTiming::from_reports(&reports);
    RunResult {
        reports,
        estimate,
        raw_estimate,
        ba_estimate,
        keyframes,
        ground_truth,
        ate,
        raw_ate,
        ba_ate,
        stats,
        backend: slam.backend_stats().copied(),
        wall,
        prefetched,
        telemetry: slam.telemetry_summary(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrefetchMode;
    use eslam_dataset::sequence::SequenceSpec;
    use eslam_dataset::NoisySource;

    #[test]
    fn run_sequence_collects_everything() {
        let seq = SequenceSpec::paper_sequences(5, 0.25)[0].build();
        let result = run_sequence(&seq, SlamConfig::scaled_for_tests(4.0));
        assert_eq!(result.reports.len(), 5);
        assert_eq!(result.estimate.len(), 5);
        assert_eq!(result.ground_truth.len(), 5);
        assert_eq!(result.stats.frames, 5);
        assert!(result.stats.tracking_ratio() > 0.9);
        let ate = result.ate_rmse_cm(Stage::Closed).expect("ate computable");
        assert!(ate < 20.0, "ate {ate} cm");
        // Ground truth is re-based: first pose is identity.
        let first = result.ground_truth.poses()[0].pose;
        assert!(first.translation.norm() < 1e-12);
        // Platform timing is consistent with the reports.
        let [arm, _, eslam] = result.platform_timing();
        assert!(arm.total_ms > eslam.total_ms);
        // The wall split was measured: waiting for the ray-caster and
        // tracking both take real time on every frame.
        assert!(result.wall.frame_wait_ms > 0.0);
        assert!(result.wall.track_ms > 0.0);
        assert!(result.reports.iter().all(|r| r.frame_wait_ms > 0.0));
    }

    #[test]
    fn both_prefetch_settings_produce_identical_results() {
        // The cheap in-process half of the equivalence story (the full
        // oracle lives in tests/prefetch_equivalence.rs): forced-on and
        // forced-off runs agree exactly. When ESLAM_PREFETCH is set it
        // overrides both configs, making this comparison trivial — the
        // integration tier covers that case by driving the paths
        // directly.
        let seq = SequenceSpec::paper_sequences(4, 0.25)[2].build();
        let mut on = SlamConfig::scaled_for_tests(4.0);
        on.prefetch = PrefetchMode::On;
        let mut off = on;
        off.prefetch = PrefetchMode::Off;
        let a = run_sequence(&seq, on);
        let b = run_sequence(&seq, off);
        assert_eq!(a.reports.len(), b.reports.len());
        for (ra, rb) in a.reports.iter().zip(&b.reports) {
            assert_eq!(ra.pose_c2w, rb.pose_c2w, "frame {}", ra.index);
            assert_eq!(ra.extraction, rb.extraction, "frame {}", ra.index);
            assert_eq!(ra.inliers, rb.inliers, "frame {}", ra.index);
        }
        assert_eq!(a.estimate, b.estimate);
    }

    #[test]
    fn any_frame_source_is_runnable() {
        // A noise-augmented wrapper goes through the same entry point.
        let seq = SequenceSpec::paper_sequences(3, 0.25)[0].build();
        let noisy = NoisySource::new(seq, eslam_dataset::noise::NoiseModel::none(), "aug");
        let result = run_sequence(&noisy, SlamConfig::scaled_for_tests(4.0));
        assert_eq!(result.reports.len(), 3);
        assert!(result.ground_truth.len() == 3);
    }
}
