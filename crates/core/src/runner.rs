//! One-call sequence evaluation: run the SLAM system over a synthetic
//! sequence and collect everything the experiments need (reports,
//! trajectories, ATE, statistics, platform timing).

use crate::config::SlamConfig;
use crate::pipeline::{sequence_timing, PlatformSequenceTiming};
use crate::stats::SequenceStats;
use crate::system::{FrameReport, Slam};
use eslam_dataset::eval::{absolute_trajectory_error, AteResult};
use eslam_dataset::sequence::SyntheticSequence;
use eslam_dataset::Trajectory;

/// Everything produced by one SLAM run over a sequence.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Per-frame reports.
    pub reports: Vec<FrameReport>,
    /// Estimated trajectory (world = first camera frame).
    pub estimate: Trajectory,
    /// Ground truth re-based to the first camera frame.
    pub ground_truth: Trajectory,
    /// ATE of the estimate against the re-based ground truth, if
    /// computable.
    pub ate: Option<AteResult>,
    /// Aggregate statistics.
    pub stats: SequenceStats,
}

impl RunResult {
    /// ATE rmse in centimetres (the Fig. 8 unit), or `None`.
    pub fn ate_rmse_cm(&self) -> Option<f64> {
        self.ate.map(|a| a.stats.rmse * 100.0)
    }

    /// Platform timing summaries (ARM / i7 / eSLAM) for this run.
    pub fn platform_timing(&self) -> [PlatformSequenceTiming; 3] {
        sequence_timing(&self.reports)
    }
}

/// Runs the SLAM system over every frame of `sequence` with `config`.
///
/// The returned ground truth is re-based so its first pose is the
/// identity, matching the estimate's world convention.
pub fn run_sequence(sequence: &SyntheticSequence, config: SlamConfig) -> RunResult {
    let mut slam = Slam::new(config);
    let mut reports = Vec::with_capacity(sequence.len());
    for frame in sequence.frames() {
        reports.push(slam.process(frame.timestamp, &frame.gray, &frame.depth));
    }
    let mut ground_truth = Trajectory::new();
    if let Some(first) = sequence.trajectory.poses().first() {
        let base = first.pose.inverse();
        for tp in sequence.trajectory.poses() {
            ground_truth.push(tp.timestamp, base.compose(&tp.pose));
        }
    }
    let estimate = slam.trajectory().clone();
    let ate = absolute_trajectory_error(&estimate, &ground_truth);
    let stats = SequenceStats::from_reports(&reports);
    RunResult {
        reports,
        estimate,
        ground_truth,
        ate,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eslam_dataset::sequence::SequenceSpec;

    #[test]
    fn run_sequence_collects_everything() {
        let seq = SequenceSpec::paper_sequences(5, 0.25)[0].build();
        let result = run_sequence(&seq, SlamConfig::scaled_for_tests(4.0));
        assert_eq!(result.reports.len(), 5);
        assert_eq!(result.estimate.len(), 5);
        assert_eq!(result.ground_truth.len(), 5);
        assert_eq!(result.stats.frames, 5);
        assert!(result.stats.tracking_ratio() > 0.9);
        let ate = result.ate_rmse_cm().expect("ate computable");
        assert!(ate < 20.0, "ate {ate} cm");
        // Ground truth is re-based: first pose is identity.
        let first = result.ground_truth.poses()[0].pose;
        assert!(first.translation.norm() < 1e-12);
        // Platform timing is consistent with the reports.
        let [arm, _, eslam] = result.platform_timing();
        assert!(arm.total_ms > eslam.total_ms);
    }
}
