//! The local mapper: keyframe insertion, covisibility maintenance, and
//! windowed local bundle adjustment — synchronously or asynchronously
//! on the shared [`WorkerPool`].
//!
//! # Execution model
//!
//! The backend follows the classic local-mapping thread pattern with a
//! determinism twist. When a frame is promoted to a keyframe, the
//! tracker hands the backend a [`KeyframeData`] snapshot; the mapper
//! inserts it (updating the covisibility graph), builds a
//! self-contained [`LocalBaJob`] over the last
//! [`BackendConfig::window`] keyframes, and either
//!
//! * runs it inline ([`BackendMode::Sync`]), or
//! * submits it to the worker pool ([`BackendMode::Async`]) via the
//!   fire-and-collect `submit`/`TaskHandle` API, so the solve overlaps
//!   the next frame's acquisition and tracking.
//!
//! Either way the *result* is only handed back through
//! [`BackendRunner::take_refinement`], which the tracker calls at the
//! **next frame boundary** — a deterministic application point. Because
//! the job input is a snapshot, the solver is deterministic, and the
//! application point does not depend on thread timing, the async mode
//! is bit-identical to the sync mode (proven by
//! `tests/backend_equivalence.rs`); asynchrony only moves the solve
//! off the tracking thread's critical path.

use crate::covisibility::CovisibilityGraph;
use crate::keyframe::{KeyframeId, KeyframeObservation, KeyframeStore};
use crate::loop_closure::{LoopClosureConfig, LoopClosureJob, LoopClosureOutcome, LoopDetector};
use eslam_features::pool::{TaskHandle, WorkerPool};
use eslam_features::Descriptor;
use eslam_geometry::ba::{bundle_adjust, BaObservation, BaParams, BaResult};
use eslam_geometry::{PinholeCamera, Se3, Vec3};
use eslam_telemetry::{Counter, Stage, Telemetry};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Environment variable forcing the backend execution mode: `off`,
/// `sync`, `async`, or `auto` (honour the configured mode). Works
/// exactly like `ESLAM_PREFETCH`/`ESLAM_MATCH_KERNEL`: when set it
/// overrides [`BackendConfig::mode`] process-wide, which is how the CI
/// matrix runs the whole test suite under both execution modes. An
/// unrecognised value panics so matrix typos fail loudly.
pub const BACKEND_ENV: &str = "ESLAM_BACKEND";

/// Execution mode of the keyframe backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendMode {
    /// No backend: track against the flat map exactly as before.
    Off,
    /// Run local BA inline on the tracking thread at each keyframe
    /// (deterministic reference mode; results still apply at the next
    /// frame boundary, so `Sync` and `Async` are bit-identical).
    Sync,
    /// Submit local BA to the worker pool and collect the result at
    /// the next frame boundary (the local-mapping thread pattern;
    /// tracking never blocks unless the solve outlasts a whole frame).
    #[default]
    Async,
}

impl BackendMode {
    /// Resolves the mode, honouring [`BACKEND_ENV`] first (read once
    /// per process, like the prefetch and kernel overrides).
    ///
    /// # Panics
    /// Panics when [`BACKEND_ENV`] holds an unrecognised value.
    pub fn resolved(self) -> BackendMode {
        static FORCED: std::sync::OnceLock<Option<BackendMode>> = std::sync::OnceLock::new();
        let forced = *FORCED.get_or_init(|| {
            eslam_features::envopt::forced(BACKEND_ENV, "auto, off, sync or async", |value| {
                match value {
                    "off" => Some(BackendMode::Off),
                    "sync" => Some(BackendMode::Sync),
                    "async" => Some(BackendMode::Async),
                    _ => None,
                }
            })
        });
        forced.unwrap_or(self)
    }
}

/// Configuration of redundant-keyframe culling: a keyframe retires
/// when nearly all of its landmarks are also observed by enough other
/// keyframes — its covisibility neighbours carry the same map
/// structure, so the store (and with it the pose graph and BoW index)
/// stays bounded on long runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyframeCullConfig {
    /// Whether culling runs at all.
    pub enabled: bool,
    /// Fraction of a keyframe's observations that must be covered for
    /// it to retire (ORB-SLAM uses 0.9).
    pub coverage: f64,
    /// An observation counts as covered when its landmark is observed
    /// by at least this many *other* keyframes.
    pub redundancy: usize,
    /// The most recent keyframes are never culled (they are the local
    /// BA window and the loop detector's working set). Keyframe 0 (the
    /// gauge) is always protected too.
    pub protect_recent: usize,
}

impl Default for KeyframeCullConfig {
    fn default() -> Self {
        KeyframeCullConfig {
            enabled: true,
            coverage: 0.9,
            redundancy: 3,
            protect_recent: 5,
        }
    }
}

/// Configuration of the keyframe backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendConfig {
    /// Execution mode (overridden by [`BACKEND_ENV`] when set).
    pub mode: BackendMode,
    /// Sliding-window size: the last `window` keyframes are jointly
    /// refined (at least 2).
    pub window: usize,
    /// How many of the oldest window poses are held fixed as the
    /// gauge anchor (clamped so at least one pose stays free). Two
    /// fixed poses anchor scale as well as pose; with fewer, the
    /// solver relies on [`BaParams::pose_prior_weight`] to pin the
    /// scale gauge of the reprojection-only problem.
    pub fixed_anchor: usize,
    /// Solver parameters for the windowed bundle adjustment.
    pub ba: BaParams,
    /// Loop closure: place recognition, geometric verification and the
    /// pose-graph correction.
    pub loop_closure: LoopClosureConfig,
    /// Redundant-keyframe culling.
    pub cull: KeyframeCullConfig,
}

impl Default for BackendConfig {
    fn default() -> Self {
        BackendConfig {
            mode: BackendMode::Async,
            window: 5,
            fixed_anchor: 2,
            ba: BaParams {
                // Depth-seeded landmarks start close to truth; a few
                // iterations per keyframe keep the backend well under
                // one frame of budget.
                max_iterations: 8,
                // Anchor each pose (and through the poses, the scale
                // gauge) to the tracked estimate: BA refines, it does
                // not rewrite.
                pose_prior_weight: 25.0,
                // The RGB-D depth residual in prior form: 1000 px²/m²
                // means moving a landmark 3 cm off its depth-seeded
                // position costs ~1 px² — landmarks average multi-view
                // pixel evidence without discarding the depth sensor.
                point_prior_weight: 1000.0,
                ..BaParams::default()
            },
            loop_closure: LoopClosureConfig::default(),
            cull: KeyframeCullConfig::default(),
        }
    }
}

/// The keyframe snapshot the tracker hands the backend.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyframeData {
    /// Index of the frame in the processed sequence.
    pub frame_index: usize,
    /// Frame timestamp, seconds.
    pub timestamp: f64,
    /// Tracked world-to-camera pose of the keyframe.
    pub pose_w2c: Se3,
    /// Landmark observations: every map point matched in this frame
    /// plus every point the keyframe created (each carrying its
    /// camera-frame position at promotion).
    pub observations: Vec<KeyframeObservation>,
    /// BRIEF descriptors index-aligned with `observations` (empty
    /// disables place recognition for this keyframe).
    pub descriptors: Vec<Descriptor>,
}

/// A refined keyframe pose, addressed both by keyframe id and by the
/// source frame index (so the tracker can patch its trajectory without
/// consulting the store).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefinedKeyframe {
    /// Keyframe id in the store.
    pub id: KeyframeId,
    /// Source frame index in the processed sequence.
    pub frame_index: usize,
    /// BA-refined world-to-camera pose.
    pub pose_w2c: Se3,
}

/// The outcome of one windowed local bundle adjustment.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalBaOutcome {
    /// Refined poses of the window keyframes (fixed anchors included,
    /// unchanged, so the application loop is uniform).
    pub keyframes: Vec<RefinedKeyframe>,
    /// Refined landmark positions by stable id (free landmarks only).
    pub landmarks: Vec<(u64, Vec3)>,
    /// Solver diagnostics.
    pub result: BaResult,
    /// Wall-clock time of the solve, milliseconds (measured on
    /// whichever thread ran it; excluded from the bit-identity
    /// guarantee).
    pub solve_ms: f64,
}

/// A self-contained local-BA problem: owns every input, so it can run
/// on any thread ('static, as [`WorkerPool::submit`] requires).
#[derive(Debug, Clone)]
pub struct LocalBaJob {
    keyframes: Vec<(KeyframeId, usize)>,
    poses: Vec<Se3>,
    fixed_poses: Vec<bool>,
    landmark_ids: Vec<u64>,
    points: Vec<Vec3>,
    fixed_points: Vec<bool>,
    observations: Vec<BaObservation>,
    camera: PinholeCamera,
    params: BaParams,
}

impl LocalBaJob {
    /// Number of window poses in the problem.
    pub fn window(&self) -> usize {
        self.poses.len()
    }

    /// Number of landmarks in the problem.
    pub fn landmarks(&self) -> usize {
        self.points.len()
    }

    /// Number of observations in the problem.
    pub fn observations(&self) -> usize {
        self.observations.len()
    }

    /// Runs the solver to completion and packages the refinement.
    pub fn run(mut self) -> LocalBaOutcome {
        let start = std::time::Instant::now();
        let result = bundle_adjust(
            &mut self.poses,
            &mut self.points,
            &self.observations,
            &self.fixed_poses,
            &self.fixed_points,
            &self.camera,
            &self.params,
        );
        let keyframes = self
            .keyframes
            .iter()
            .zip(&self.poses)
            .map(|(&(id, frame_index), &pose_w2c)| RefinedKeyframe {
                id,
                frame_index,
                pose_w2c,
            })
            .collect();
        let landmarks = self
            .landmark_ids
            .iter()
            .zip(&self.points)
            .zip(&self.fixed_points)
            .filter(|(_, &fixed)| !fixed)
            .map(|((&id, &p), _)| (id, p))
            .collect();
        LocalBaOutcome {
            keyframes,
            landmarks,
            result,
            solve_ms: start.elapsed().as_secs_f64() * 1e3,
        }
    }
}

/// Keyframe bookkeeping: store + covisibility + the inverted
/// landmark→keyframes index, and the local-BA problem builder.
#[derive(Debug, Clone, Default)]
pub struct LocalMapper {
    store: KeyframeStore,
    covisibility: CovisibilityGraph,
    /// Inverted index: landmark id → keyframes observing it, in
    /// insertion order.
    observers: HashMap<u64, Vec<KeyframeId>>,
}

impl LocalMapper {
    /// Creates an empty mapper.
    pub fn new() -> Self {
        LocalMapper::default()
    }

    /// The keyframe store.
    pub fn store(&self) -> &KeyframeStore {
        &self.store
    }

    /// The covisibility graph.
    pub fn covisibility(&self) -> &CovisibilityGraph {
        &self.covisibility
    }

    /// The keyframes observing `landmark`, in insertion order.
    pub fn observers(&self, landmark: u64) -> &[KeyframeId] {
        self.observers.get(&landmark).map_or(&[], |v| v)
    }

    /// Rebuilds a mapper from a deserialized store and covisibility
    /// graph (the atlas-load path). The inverted landmark→keyframes
    /// index is derived from the store (same dedup rule as insertion),
    /// so it can never disagree with the persisted data; the only
    /// cross-section invariant checked here is that the graph has one
    /// node per keyframe.
    pub fn from_parts(
        store: KeyframeStore,
        covisibility: CovisibilityGraph,
    ) -> Result<LocalMapper, String> {
        if covisibility.len() != store.len() {
            return Err(format!(
                "covisibility graph has {} nodes but the store has {} keyframes",
                covisibility.len(),
                store.len()
            ));
        }
        let mut observers: HashMap<u64, Vec<KeyframeId>> = HashMap::new();
        for kf in store.keyframes() {
            for obs in &kf.observations {
                let entry = observers.entry(obs.landmark).or_default();
                if entry.last() != Some(&kf.id) {
                    entry.push(kf.id);
                }
            }
        }
        Ok(LocalMapper {
            store,
            covisibility,
            observers,
        })
    }

    /// Inserts a keyframe, wiring it into the covisibility graph by
    /// counting shared landmarks against every keyframe that already
    /// observes one of its landmarks.
    pub fn insert_keyframe(&mut self, data: KeyframeData) -> KeyframeId {
        let id = self.store.push(
            data.frame_index,
            data.timestamp,
            data.pose_w2c,
            data.observations,
            data.descriptors,
        );
        let node = self.covisibility.add_node();
        debug_assert_eq!(node, id);
        // Count shared landmarks per already-observing keyframe. A
        // BTreeMap keeps the accumulation order deterministic.
        let mut shared: std::collections::BTreeMap<KeyframeId, usize> =
            std::collections::BTreeMap::new();
        for obs in &self.store.get(id).observations {
            let entry = self.observers.entry(obs.landmark).or_default();
            // Two features of one keyframe can match the same landmark;
            // the keyframe still observes it once (no self-edges, no
            // duplicate observer entries — `id` is always the newest,
            // so a duplicate can only sit at the tail).
            if entry.last() == Some(&id) {
                continue;
            }
            for &other in entry.iter() {
                *shared.entry(other).or_insert(0) += 1;
            }
            entry.push(id);
        }
        for (other, count) in shared {
            self.covisibility.accumulate(id, other, count);
        }
        id
    }

    /// Retires redundant keyframes: a keyframe (other than keyframe 0
    /// and the `protect_recent` newest) is culled when at least
    /// `coverage` of its observations see landmarks that
    /// `redundancy`-or-more *other* keyframes also observe — its map
    /// structure is carried by its covisibility neighbours. Store ids
    /// are compacted, the covisibility graph is renumbered, and the
    /// inverted landmark→keyframes index rebuilt.
    ///
    /// Returns the old→new id remap (`None` entries are culled
    /// keyframes) for downstream id holders (the loop detector), or
    /// `None` when nothing was culled.
    ///
    /// Callers must not hold dispatched jobs across a cull: pending
    /// local-BA or loop outcomes address keyframes by pre-cull id. The
    /// runner only culls while its queues are empty.
    pub fn cull_redundant(
        &mut self,
        config: &KeyframeCullConfig,
    ) -> Option<Vec<Option<KeyframeId>>> {
        if !config.enabled {
            return None;
        }
        let len = self.store.len();
        let protected_from = len.saturating_sub(config.protect_recent.max(1));
        let observers = &self.observers;
        let remap = self.store.retain_remap(|kf| {
            if kf.id == 0 || kf.id >= protected_from || kf.observations.is_empty() {
                return true;
            }
            let covered = kf
                .observations
                .iter()
                .filter(|obs| {
                    observers
                        .get(&obs.landmark)
                        .is_some_and(|seen| seen.len() > config.redundancy)
                })
                .count();
            (covered as f64) < config.coverage * (kf.observations.len() as f64)
        })?;
        self.covisibility.apply_remap(&remap);
        // Rebuild the inverted index from the surviving store (same
        // dedup rule as insertion: one entry per observing keyframe).
        self.observers.clear();
        for kf in self.store.keyframes() {
            for obs in &kf.observations {
                let entry = self.observers.entry(obs.landmark).or_default();
                if entry.last() != Some(&kf.id) {
                    entry.push(kf.id);
                }
            }
        }
        Some(remap)
    }

    /// Applies a refinement to the stored keyframe poses.
    pub fn apply(&mut self, outcome: &LocalBaOutcome) {
        for kf in &outcome.keyframes {
            self.store.set_pose(kf.id, kf.pose_w2c);
        }
    }

    /// Builds the local-BA problem over the last `config.window`
    /// keyframes. `position_of` resolves a landmark id to its current
    /// map position (`None` for culled landmarks, whose observations
    /// are dropped).
    ///
    /// Returns `None` when the window holds fewer than two keyframes
    /// or no surviving observations.
    pub fn local_ba_job(
        &self,
        config: &BackendConfig,
        camera: &PinholeCamera,
        position_of: &mut dyn FnMut(u64) -> Option<Vec3>,
    ) -> Option<LocalBaJob> {
        let window = self.store.window(config.window.max(2));
        if window.len() < 2 {
            return None;
        }
        // At least one pose free, at least one fixed (the gauge).
        let fixed_count = config.fixed_anchor.clamp(1, window.len() - 1);

        let keyframes: Vec<(KeyframeId, usize)> =
            window.iter().map(|kf| (kf.id, kf.frame_index)).collect();
        let poses: Vec<Se3> = window.iter().map(|kf| kf.pose_w2c).collect();
        let fixed_poses: Vec<bool> = (0..window.len()).map(|i| i < fixed_count).collect();

        // Landmarks in deterministic first-observation order.
        let mut landmark_ids: Vec<u64> = Vec::new();
        let mut points: Vec<Vec3> = Vec::new();
        let mut slot: HashMap<u64, Option<usize>> = HashMap::new();
        // Distinct *poses* observing each landmark — not raw
        // observation count: duplicate observations from one keyframe
        // add no parallax, and a landmark without a second viewpoint
        // must stay fixed (its reprojection Hessian is rank-deficient
        // along the viewing ray).
        let mut pose_count: Vec<usize> = Vec::new();
        let mut last_counted_pose: Vec<usize> = Vec::new();
        let mut observations: Vec<BaObservation> = Vec::new();
        for (pose_idx, kf) in window.iter().enumerate() {
            for obs in &kf.observations {
                let entry = slot.entry(obs.landmark).or_insert_with(|| {
                    position_of(obs.landmark).map(|p| {
                        landmark_ids.push(obs.landmark);
                        points.push(p);
                        pose_count.push(0);
                        last_counted_pose.push(usize::MAX);
                        points.len() - 1
                    })
                });
                let Some(point) = *entry else { continue };
                if last_counted_pose[point] != pose_idx {
                    last_counted_pose[point] = pose_idx;
                    pose_count[point] += 1;
                }
                observations.push(BaObservation {
                    pose: pose_idx,
                    point,
                    pixel: obs.pixel,
                });
            }
        }
        if observations.is_empty() {
            return None;
        }
        // A landmark seen from a single viewpoint inside the window
        // cannot be triangulated by it; keep it fixed so its
        // (depth-seeded) position still constrains the observing pose.
        let fixed_points: Vec<bool> = pose_count.iter().map(|&c| c < 2).collect();

        Some(LocalBaJob {
            keyframes,
            poses,
            fixed_poses,
            landmark_ids,
            points,
            fixed_points,
            observations,
            camera: *camera,
            params: config.ba,
        })
    }
}

/// Aggregate backend diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BackendStats {
    /// Local-BA solves dispatched.
    pub runs: usize,
    /// Refinements applied back to the map.
    pub applied: usize,
    /// Total accepted LM iterations across all solves.
    pub iterations: usize,
    /// Keyframe poses refined (window members, cumulative).
    pub refined_keyframes: usize,
    /// Landmark positions refined (cumulative).
    pub refined_landmarks: usize,
    /// Total solver wall-clock time, ms (on whichever thread ran it).
    pub solve_ms: f64,
    /// Total wall-clock time the *application points* spent blocked
    /// collecting solves, ms. Near zero when solves finish within a
    /// frame (or run inline in sync mode, where the collect is just a
    /// buffer take); grows when an async solve outlasts its frame and
    /// the next frame has to wait for it.
    pub join_wait_ms: f64,
    /// Initial cost of the most recent solve.
    pub last_initial_cost: f64,
    /// Final cost of the most recent solve.
    pub last_final_cost: f64,
    /// Loop verifications dispatched (consistent gated candidates).
    pub loop_candidates: usize,
    /// Loops that passed geometric verification and produced a
    /// pose-graph correction.
    pub loops_closed: usize,
    /// Loop candidates rejected by geometric verification.
    pub loops_rejected: usize,
    /// Cross-checked matches of the most recent verification.
    pub last_loop_matches: usize,
    /// PnP inliers of the most recent verification.
    pub last_loop_inliers: usize,
    /// Accepted pose-graph LM iterations across all closures.
    pub pose_graph_iterations: usize,
    /// Total loop verification + solve wall-clock, ms (on whichever
    /// thread ran it).
    pub loop_solve_ms: f64,
    /// Keyframes retired by redundancy culling (cumulative).
    pub culled_keyframes: usize,
}

/// One dispatched solve, either in flight or already finished.
enum PendingJob {
    /// Running (or queued) on the worker pool.
    Handle(TaskHandle<LocalBaOutcome>),
    /// Solved inline (sync mode), waiting for its application point.
    Ready(Box<LocalBaOutcome>),
}

impl std::fmt::Debug for PendingJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PendingJob::Handle(h) => f.debug_tuple("Handle").field(h).finish(),
            PendingJob::Ready(_) => f.debug_tuple("Ready").finish(),
        }
    }
}

/// One dispatched loop verification + correction, in flight or done.
enum PendingLoop {
    /// Running (or queued) on the worker pool.
    Handle(TaskHandle<LoopClosureOutcome>),
    /// Solved inline (sync mode), waiting for its application point.
    Ready(Box<LoopClosureOutcome>),
}

impl std::fmt::Debug for PendingLoop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PendingLoop::Handle(h) => f.debug_tuple("Handle").field(h).finish(),
            PendingLoop::Ready(_) => f.debug_tuple("Ready").finish(),
        }
    }
}

/// Drives the mapper under the configured execution mode and owns the
/// in-flight solve.
///
/// The tracker calls [`BackendRunner::take_refinement`] at the start of
/// every frame (the deterministic application point) and
/// [`BackendRunner::on_keyframe`] whenever a frame is promoted. In
/// steady state at most one solve is pending; the queue exists so
/// callers that skip application points still never lose a result.
#[derive(Debug)]
pub struct BackendRunner {
    mapper: LocalMapper,
    config: BackendConfig,
    camera: PinholeCamera,
    /// Resolved execution mode (env override applied once).
    asynchronous: bool,
    pending: VecDeque<PendingJob>,
    /// Place recognition state; `None` when loop closure is disabled.
    detector: Option<LoopDetector>,
    pending_loops: VecDeque<PendingLoop>,
    stats: BackendStats,
    /// Telemetry sink backend stages record into; `None` → off.
    telemetry: Option<Arc<Telemetry>>,
}

impl BackendRunner {
    /// Creates a runner for the resolved mode, or `None` when the
    /// backend is off (configured `Off`, or forced off via
    /// [`BACKEND_ENV`]).
    pub fn new(config: BackendConfig, camera: PinholeCamera) -> Option<Self> {
        let mode = config.mode.resolved();
        if mode == BackendMode::Off {
            return None;
        }
        Some(BackendRunner {
            mapper: LocalMapper::new(),
            camera,
            asynchronous: mode == BackendMode::Async,
            pending: VecDeque::new(),
            detector: config
                .loop_closure
                .enabled
                .then(|| LoopDetector::new(config.loop_closure)),
            pending_loops: VecDeque::new(),
            config,
            stats: BackendStats::default(),
            telemetry: None,
        })
    }

    /// Attaches (or detaches) the telemetry sink backend spans and
    /// counters record into. Telemetry observes only — job scheduling
    /// and solve results are bit-identical with and without a sink.
    pub fn set_telemetry(&mut self, telemetry: Option<Arc<Telemetry>>) {
        self.telemetry = telemetry;
    }

    /// The mapper (keyframe store + covisibility graph).
    pub fn mapper(&self) -> &LocalMapper {
        &self.mapper
    }

    /// Whether solves run on the worker pool rather than inline.
    pub fn is_async(&self) -> bool {
        self.asynchronous
    }

    /// Aggregate diagnostics.
    pub fn stats(&self) -> &BackendStats {
        &self.stats
    }

    /// Whether a local-BA solve is waiting for its application point.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Whether a loop verification is waiting for its application
    /// point.
    pub fn has_pending_loop(&self) -> bool {
        !self.pending_loops.is_empty()
    }

    /// Inserts a keyframe and drives the whole backend step: redundant
    /// keyframe culling, place recognition (possibly dispatching a loop
    /// verification + pose-graph job) and the windowed local BA — jobs
    /// run inline in sync mode, on `pool` in async mode. `position_of`
    /// resolves landmark ids to current map positions for the problem
    /// snapshots.
    pub fn on_keyframe(
        &mut self,
        pool: &WorkerPool,
        data: KeyframeData,
        position_of: &mut dyn FnMut(u64) -> Option<Vec3>,
    ) {
        let mut id = self.mapper.insert_keyframe(data);
        // Culling only while no dispatched job holds pre-cull ids (the
        // tracker drains both queues at every frame boundary, so in the
        // steady pipeline this is every keyframe). The pending checks
        // are mode-independent — jobs are queued and drained at the
        // same points in sync and async mode — so the cull schedule is
        // bit-identical too.
        if self.pending.is_empty() && self.pending_loops.is_empty() {
            if let Some(remap) = self.mapper.cull_redundant(&self.config.cull) {
                self.stats.culled_keyframes += remap.iter().filter(|m| m.is_none()).count();
                if let Some(detector) = self.detector.as_mut() {
                    detector.apply_remap(&remap);
                }
                id = remap[id].expect("the newest keyframe is protected");
            }
        }
        // Place recognition on the tracking thread (cheap, state must
        // evolve deterministically); verification + pose graph as a
        // dispatched job.
        if let Some(detector) = self.detector.as_mut() {
            let candidate = {
                let _span = Telemetry::span_opt(self.telemetry.as_deref(), Stage::LoopDetect);
                detector.observe(
                    self.mapper.store(),
                    self.mapper.covisibility(),
                    id,
                    &mut |landmark| position_of(landmark).is_some(),
                )
            };
            if let Some(candidate) = candidate {
                let job = LoopClosureJob::snapshot(
                    candidate,
                    self.mapper.store(),
                    self.mapper.covisibility(),
                    &self.camera,
                    &self.config.loop_closure,
                    position_of,
                );
                self.stats.loop_candidates += 1;
                if let Some(t) = &self.telemetry {
                    t.count(Counter::LoopCandidates, 1);
                }
                // The `Arc` clone travels into the job so verification
                // is timed on whichever thread runs it.
                let telemetry = self
                    .telemetry
                    .as_ref()
                    .filter(|t| t.timing())
                    .map(Arc::clone);
                if self.asynchronous {
                    self.pending_loops
                        .push_back(PendingLoop::Handle(pool.submit(move || {
                            let _span =
                                Telemetry::span_opt(telemetry.as_deref(), Stage::LoopVerify);
                            job.run()
                        })));
                } else {
                    let outcome = {
                        let _span = Telemetry::span_opt(telemetry.as_deref(), Stage::LoopVerify);
                        job.run()
                    };
                    self.pending_loops
                        .push_back(PendingLoop::Ready(Box::new(outcome)));
                }
            }
        }
        let Some(job) = self
            .mapper
            .local_ba_job(&self.config, &self.camera, position_of)
        else {
            return;
        };
        self.stats.runs += 1;
        let telemetry = self
            .telemetry
            .as_ref()
            .filter(|t| t.timing())
            .map(Arc::clone);
        if self.asynchronous {
            self.pending
                .push_back(PendingJob::Handle(pool.submit(move || {
                    let _span = Telemetry::span_opt(telemetry.as_deref(), Stage::BackendSolve);
                    job.run()
                })));
        } else {
            let outcome = {
                let _span = Telemetry::span_opt(telemetry.as_deref(), Stage::BackendSolve);
                job.run()
            };
            self.pending.push_back(PendingJob::Ready(Box::new(outcome)));
        }
    }

    /// Collects the oldest dispatched solve, applying its poses to the
    /// keyframe store, and hands it to the caller to swap into the map
    /// and trajectory. Blocks (help-draining the pool) if the solve is
    /// still running — the deterministic application point must not
    /// depend on whether the solve happened to finish in time.
    ///
    /// Returns `None` when nothing is pending.
    pub fn take_refinement(&mut self) -> Option<LocalBaOutcome> {
        let pending = self.pending.pop_front()?;
        let collect_start = std::time::Instant::now();
        let outcome = match pending {
            PendingJob::Handle(handle) => handle.join(),
            PendingJob::Ready(ready) => *ready,
        };
        self.stats.join_wait_ms += collect_start.elapsed().as_secs_f64() * 1e3;
        if let Some(t) = &self.telemetry {
            t.record_since(Stage::BackendJoin, collect_start);
        }
        self.mapper.apply(&outcome);
        self.stats.applied += 1;
        self.stats.iterations += outcome.result.iterations;
        self.stats.refined_keyframes += outcome.keyframes.len();
        self.stats.refined_landmarks += outcome.landmarks.len();
        self.stats.solve_ms += outcome.solve_ms;
        self.stats.last_initial_cost = outcome.result.initial_cost;
        self.stats.last_final_cost = outcome.result.final_cost;
        Some(outcome)
    }

    /// Collects the oldest dispatched loop verification. An accepted
    /// outcome's corrected poses are swapped into the keyframe store;
    /// either way the outcome is handed to the caller (who propagates
    /// accepted corrections into the map and trajectory). Blocks
    /// (help-draining the pool) while the job is still running — the
    /// application point must not depend on scheduler timing.
    ///
    /// Returns `None` when nothing is pending.
    pub fn take_loop_closure(&mut self) -> Option<LoopClosureOutcome> {
        let pending = self.pending_loops.pop_front()?;
        let collect_start = std::time::Instant::now();
        let outcome = match pending {
            PendingLoop::Handle(handle) => handle.join(),
            PendingLoop::Ready(ready) => *ready,
        };
        self.stats.join_wait_ms += collect_start.elapsed().as_secs_f64() * 1e3;
        if let Some(t) = &self.telemetry {
            t.record_since(Stage::BackendJoin, collect_start);
            t.count(
                if outcome.accepted {
                    Counter::LoopClosuresAccepted
                } else {
                    Counter::LoopClosuresRejected
                },
                1,
            );
        }
        self.stats.last_loop_matches = outcome.matches;
        self.stats.last_loop_inliers = outcome.inliers;
        self.stats.loop_solve_ms += outcome.solve_ms;
        if outcome.accepted {
            self.stats.loops_closed += 1;
            if let Some(result) = &outcome.result {
                self.stats.pose_graph_iterations += result.iterations;
            }
            for kf in &outcome.keyframes {
                self.mapper.store.set_pose(kf.id, kf.pose_w2c);
            }
        } else {
            self.stats.loops_rejected += 1;
        }
        Some(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyframe::KeyframeObservation;

    fn camera() -> PinholeCamera {
        PinholeCamera::tum_fr1()
    }

    /// A two-keyframe scene over a shared landmark grid, with the
    /// second pose perturbed away from its ground truth.
    fn scene() -> (Vec<Vec3>, Se3, Se3, KeyframeData, KeyframeData) {
        let camera = camera();
        let truth0 = Se3::identity();
        let truth1 = Se3::from_translation(Vec3::new(0.15, -0.05, 0.02));
        let points: Vec<Vec3> = (0..40)
            .map(|i| {
                Vec3::new(
                    ((i % 8) as f64) * 0.35 - 1.2,
                    ((i / 8) as f64) * 0.35 - 0.8,
                    2.5 + ((i * 7) % 5) as f64 * 0.3,
                )
            })
            .collect();
        let obs_from = |pose: &Se3| -> Vec<KeyframeObservation> {
            points
                .iter()
                .enumerate()
                .filter_map(|(i, p)| {
                    let cam = pose.transform(*p);
                    camera.project(cam).map(|uv| KeyframeObservation {
                        landmark: i as u64,
                        pixel: uv,
                        position: cam,
                    })
                })
                .collect()
        };
        let kf0 = KeyframeData {
            frame_index: 0,
            timestamp: 0.0,
            pose_w2c: truth0,
            observations: obs_from(&truth0),
            descriptors: Vec::new(),
        };
        let kf1 = KeyframeData {
            frame_index: 4,
            timestamp: 0.133,
            // Tracked pose is off-truth: BA should pull it back.
            pose_w2c: Se3::from_translation(truth1.translation + Vec3::new(0.02, -0.015, 0.01)),
            observations: obs_from(&truth1),
            descriptors: Vec::new(),
        };
        (points, truth0, truth1, kf0, kf1)
    }

    #[test]
    fn insert_maintains_covisibility_and_observers() {
        let (_, _, _, kf0, kf1) = scene();
        let shared = kf1
            .observations
            .iter()
            .filter(|o| kf0.observations.iter().any(|p| p.landmark == o.landmark))
            .count();
        let mut mapper = LocalMapper::new();
        let a = mapper.insert_keyframe(kf0);
        let b = mapper.insert_keyframe(kf1);
        assert_eq!((a, b), (0, 1));
        assert_eq!(mapper.covisibility().weight(0, 1), shared);
        assert_eq!(mapper.covisibility().weight(1, 0), shared);
        assert_eq!(mapper.observers(0), &[0, 1]);
        assert_eq!(mapper.store().len(), 2);
    }

    #[test]
    fn local_ba_needs_two_keyframes() {
        let (points, _, _, kf0, _) = scene();
        let mut mapper = LocalMapper::new();
        mapper.insert_keyframe(kf0);
        let job = mapper.local_ba_job(&BackendConfig::default(), &camera(), &mut |id| {
            points.get(id as usize).copied()
        });
        assert!(job.is_none());
    }

    #[test]
    fn culled_landmarks_are_dropped_from_the_problem() {
        let (points, _, _, kf0, kf1) = scene();
        let mut mapper = LocalMapper::new();
        mapper.insert_keyframe(kf0);
        mapper.insert_keyframe(kf1);
        // Landmarks 0..10 have been culled from the map.
        let job = mapper
            .local_ba_job(&BackendConfig::default(), &camera(), &mut |id| {
                (id >= 10).then(|| points[id as usize])
            })
            .expect("job");
        assert_eq!(job.landmarks(), points.len() - 10);
        assert!(job.observations() > 0);
    }

    #[test]
    fn sync_runner_refines_the_tracked_pose() {
        let (points, _, truth1, kf0, kf1) = scene();
        let mut config = BackendConfig::default();
        // Pin the mode so a forced ESLAM_BACKEND=off cannot null this
        // test's runner (sync vs async does not matter here).
        if config.mode.resolved() == BackendMode::Off {
            return;
        }
        config.mode = BackendMode::Sync;
        let tracked = kf1.pose_w2c;
        let mut runner = BackendRunner::new(config, camera()).unwrap();
        let pool = WorkerPool::new(1);
        let mut lookup = |id: u64| points.get(id as usize).copied();
        runner.on_keyframe(&pool, kf0, &mut lookup);
        assert!(!runner.has_pending(), "single keyframe cannot BA");
        runner.on_keyframe(&pool, kf1, &mut lookup);
        assert!(runner.has_pending());
        let outcome = runner.take_refinement().expect("refinement");
        assert!(runner.take_refinement().is_none());
        assert_eq!(outcome.keyframes.len(), 2);
        let refined = outcome.keyframes[1].pose_w2c;
        let before = (tracked.translation - truth1.translation).norm();
        let after = (refined.translation - truth1.translation).norm();
        // Full recovery is not expected: the pose prior deliberately
        // anchors toward the tracked pose, and the free landmarks
        // absorb part of the discrepancy — but the error must shrink
        // decisively.
        assert!(
            after < before * 0.5,
            "BA should shrink the pose error: {before} -> {after}"
        );
        // The store carries the refined pose.
        assert_eq!(runner.mapper().store().get(1).pose_w2c, refined);
        assert_eq!(runner.stats().applied, 1);
        assert!(runner.stats().last_final_cost <= runner.stats().last_initial_cost);
    }

    #[test]
    fn async_runner_matches_sync_runner_bitwise() {
        let (points, _, _, kf0, kf1) = scene();
        if BackendMode::Async.resolved() == BackendMode::Off {
            return;
        }
        let run = |mode: BackendMode, threads: usize| {
            let config = BackendConfig {
                mode,
                ..Default::default()
            };
            let mut runner = BackendRunner::new(config, camera()).unwrap();
            let pool = WorkerPool::new(threads);
            let mut lookup = |id: u64| points.get(id as usize).copied();
            runner.on_keyframe(&pool, kf0.clone(), &mut lookup);
            runner.on_keyframe(&pool, kf1.clone(), &mut lookup);
            runner.take_refinement().expect("refinement")
        };
        let sync = run(BackendMode::Sync, 1);
        for threads in [1, 2, 4] {
            let theirs = run(BackendMode::Async, threads);
            assert_eq!(sync.keyframes, theirs.keyframes, "{threads} threads");
            assert_eq!(sync.landmarks, theirs.landmarks, "{threads} threads");
            assert_eq!(sync.result, theirs.result, "{threads} threads");
        }
    }

    #[test]
    fn off_mode_yields_no_runner() {
        let config = BackendConfig {
            mode: BackendMode::Off,
            ..Default::default()
        };
        // With ESLAM_BACKEND forcing sync/async this returns Some —
        // both outcomes are legal depending on the environment.
        let runner = BackendRunner::new(config, camera());
        match BackendMode::Off.resolved() {
            BackendMode::Off => assert!(runner.is_none()),
            _ => assert!(runner.is_some()),
        }
    }

    #[test]
    fn duplicate_observations_from_one_keyframe_do_not_free_a_point() {
        // Two features of the same keyframe matching one landmark add
        // no parallax: the landmark is still single-view and must stay
        // fixed in the window problem.
        let (points, _, _, mut kf0, mut kf1) = scene();
        kf1.observations.retain(|o| o.landmark != 0);
        let first = kf0
            .observations
            .iter()
            .find(|o| o.landmark == 0)
            .copied()
            .expect("kf0 sees landmark 0");
        kf0.observations.push(KeyframeObservation {
            landmark: 0,
            pixel: eslam_geometry::Vec2::new(first.pixel.x + 0.5, first.pixel.y),
            position: first.position,
        });
        let mut mapper = LocalMapper::new();
        mapper.insert_keyframe(kf0);
        mapper.insert_keyframe(kf1);
        let job = mapper
            .local_ba_job(&BackendConfig::default(), &camera(), &mut |id| {
                points.get(id as usize).copied()
            })
            .expect("job");
        let outcome = job.run();
        assert!(
            outcome.landmarks.iter().all(|&(id, _)| id != 0),
            "single-view landmark freed by duplicate observations"
        );
    }

    #[test]
    fn single_window_observation_points_stay_fixed() {
        let (points, _, _, kf0, mut kf1) = scene();
        // Landmark 0 is only seen by kf0 within the window.
        kf1.observations.retain(|o| o.landmark != 0);
        let mut mapper = LocalMapper::new();
        mapper.insert_keyframe(kf0);
        mapper.insert_keyframe(kf1);
        let job = mapper
            .local_ba_job(&BackendConfig::default(), &camera(), &mut |id| {
                points.get(id as usize).copied()
            })
            .expect("job");
        let outcome = job.run();
        assert!(
            outcome.landmarks.iter().all(|&(id, _)| id != 0),
            "fixed landmark must not be reported as refined"
        );
    }

    /// A keyframe whose landmarks are all observed by ≥ `redundancy`
    /// other keyframes, sandwiched between enough protected ones.
    #[test]
    fn redundant_keyframe_is_culled_and_ids_remap() {
        let camera = camera();
        let pose = Se3::identity();
        // 6 keyframes all observing the same 30 landmarks: with
        // protect_recent = 2, keyframes 1..=3 are cullable and fully
        // covered (every landmark seen by 5 others).
        let points: Vec<Vec3> = (0..30)
            .map(|i| {
                Vec3::new(
                    ((i % 6) as f64) * 0.4 - 1.0,
                    ((i / 6) as f64) * 0.4 - 1.0,
                    3.0,
                )
            })
            .collect();
        let data = |frame: usize| -> KeyframeData {
            let observations = points
                .iter()
                .enumerate()
                .filter_map(|(i, p)| {
                    let cam = pose.transform(*p);
                    camera.project(cam).map(|uv| KeyframeObservation {
                        landmark: i as u64,
                        pixel: uv,
                        position: cam,
                    })
                })
                .collect();
            KeyframeData {
                frame_index: frame,
                timestamp: frame as f64 / 30.0,
                pose_w2c: pose,
                observations,
                descriptors: Vec::new(),
            }
        };
        let mut mapper = LocalMapper::new();
        for k in 0..6 {
            mapper.insert_keyframe(data(k * 2));
        }
        let config = KeyframeCullConfig {
            enabled: true,
            coverage: 0.9,
            redundancy: 3,
            protect_recent: 2,
        };
        let remap = mapper.cull_redundant(&config).expect("culled");
        // Keyframe 0 and the last two survive; 1..=3 retire.
        assert_eq!(remap, vec![Some(0), None, None, None, Some(1), Some(2)]);
        assert_eq!(mapper.store().len(), 3);
        assert_eq!(mapper.covisibility().len(), 3);
        // The inverted index knows only surviving ids, deduped.
        for i in 0..30u64 {
            assert_eq!(mapper.observers(i), &[0, 1, 2]);
        }
        // Covisibility stays symmetric and positive between survivors.
        for a in 0..3 {
            for b in 0..3 {
                if a != b {
                    assert_eq!(
                        mapper.covisibility().weight(a, b),
                        mapper.covisibility().weight(b, a)
                    );
                    assert_eq!(mapper.covisibility().weight(a, b), 30);
                }
            }
        }
        // Disabled culling is a no-op.
        assert!(mapper
            .cull_redundant(&KeyframeCullConfig {
                enabled: false,
                ..config
            })
            .is_none());
    }

    #[test]
    fn runner_cull_with_detector_stays_consistent() {
        // Regression: the runner culls after inserting a keyframe but
        // before the detector has indexed it, so the remap covers one
        // more keyframe than the detector's BoW table — apply_remap
        // must tolerate the surplus (this panicked in debug builds).
        // Redundant identical keyframes with descriptors force a cull
        // while the loop detector is active.
        if BackendMode::Sync.resolved() == BackendMode::Off {
            return;
        }
        let camera = camera();
        let pose = Se3::identity();
        let points: Vec<Vec3> = (0..30)
            .map(|i| {
                Vec3::new(
                    ((i % 6) as f64) * 0.4 - 1.0,
                    ((i / 6) as f64) * 0.4 - 1.0,
                    3.0,
                )
            })
            .collect();
        let mut config = BackendConfig {
            mode: BackendMode::Sync,
            ..Default::default()
        };
        config.cull.protect_recent = 2;
        let mut runner = BackendRunner::new(config, camera).unwrap();
        let pool = WorkerPool::new(1);
        for k in 0..8usize {
            let mut observations = Vec::new();
            let mut descriptors = Vec::new();
            for (i, p) in points.iter().enumerate() {
                let cam = pose.transform(*p);
                if let Some(uv) = camera.project(cam) {
                    observations.push(KeyframeObservation {
                        landmark: i as u64,
                        pixel: uv,
                        position: cam,
                    });
                    descriptors.push(Descriptor::from_words([i as u64, 1, 2, 3]));
                }
            }
            runner.on_keyframe(
                &pool,
                KeyframeData {
                    frame_index: k,
                    timestamp: k as f64 / 30.0,
                    pose_w2c: pose,
                    observations,
                    descriptors,
                },
                &mut |id| points.get(id as usize).copied(),
            );
            // Drain at every boundary like the tracker does, so the
            // cull precondition (empty queues) holds each keyframe.
            while runner.take_refinement().is_some() {}
            while runner.take_loop_closure().is_some() {}
        }
        assert!(
            runner.stats().culled_keyframes > 0,
            "scenario must actually cull"
        );
        // Store, graph and the detector survived with dense aligned
        // ids; the next insert still works.
        assert_eq!(
            runner.mapper().store().len(),
            runner.mapper().covisibility().len()
        );
    }

    mod cull_proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Whatever observation structure keyframes arrive with,
            /// culling keeps the covisibility graph symmetric and
            /// consistent with the rebuilt observer index, keeps store
            /// ids dense, and leaves the windowed-BA problem builder
            /// functional.
            #[test]
            fn culling_preserves_backend_invariants(
                // keyframes as landmark-id lists (small id space forces
                // heavy sharing → real culling).
                frames in proptest::collection::vec(
                    proptest::collection::vec(0u64..12, 1..10), 3..12),
                protect in 1usize..4,
                redundancy in 1usize..4,
            ) {
                let camera = camera();
                let mut mapper = LocalMapper::new();
                for (k, landmarks) in frames.iter().enumerate() {
                    let observations: Vec<KeyframeObservation> = landmarks
                        .iter()
                        .map(|&l| KeyframeObservation {
                            landmark: l,
                            pixel: eslam_geometry::Vec2::new(
                                40.0 + (l % 5) as f64 * 90.0,
                                40.0 + (l / 5) as f64 * 90.0,
                            ),
                            position: Vec3::new(l as f64 * 0.1, 0.0, 2.0),
                        })
                        .collect();
                    mapper.insert_keyframe(KeyframeData {
                        frame_index: k,
                        timestamp: k as f64,
                        pose_w2c: Se3::identity(),
                        observations,
                        descriptors: Vec::new(),
                    });
                }
                let before = mapper.store().len();
                let config = KeyframeCullConfig {
                    enabled: true,
                    coverage: 0.9,
                    redundancy,
                    protect_recent: protect,
                };
                let remap = mapper.cull_redundant(&config);
                let store = mapper.store();
                let cov = mapper.covisibility();
                if let Some(remap) = &remap {
                    prop_assert_eq!(remap.len(), before);
                    // Keyframe 0 and the protected tail always survive.
                    prop_assert!(remap[0].is_some());
                    for m in &remap[before.saturating_sub(protect)..] {
                        prop_assert!(m.is_some());
                    }
                }
                // Ids dense and aligned across store and graph.
                prop_assert_eq!(store.len(), cov.len());
                for (i, kf) in store.keyframes().iter().enumerate() {
                    prop_assert_eq!(kf.id, i);
                }
                // Symmetry + neighbour/weight consistency.
                for a in 0..cov.len() {
                    for b in 0..cov.len() {
                        if a != b {
                            prop_assert_eq!(cov.weight(a, b), cov.weight(b, a));
                        }
                    }
                    for (b, w) in cov.neighbors(a, 1) {
                        prop_assert_eq!(cov.weight(a, b), w);
                    }
                }
                // Edge weights equal recomputed shared-landmark counts
                // (the graph was renumbered, not recounted — they must
                // still agree with the surviving observation lists).
                for a in 0..store.len() {
                    for b in (a + 1)..store.len() {
                        let la: std::collections::BTreeSet<u64> = store.get(a)
                            .observations.iter().map(|o| o.landmark).collect();
                        let shared = store.get(b).observations.iter()
                            .map(|o| o.landmark)
                            .collect::<std::collections::BTreeSet<u64>>()
                            .intersection(&la).count();
                        prop_assert_eq!(cov.weight(a, b), shared, "pair ({},{})", a, b);
                    }
                }
                // The observer index agrees with the store.
                for kf in store.keyframes() {
                    for obs in &kf.observations {
                        prop_assert!(mapper.observers(obs.landmark).contains(&kf.id));
                    }
                }
                // The windowed-BA problem builder still works (any
                // number of surviving keyframes).
                let job = mapper.local_ba_job(
                    &BackendConfig::default(),
                    &camera,
                    &mut |id| Some(Vec3::new(id as f64 * 0.1, 0.0, 2.0)),
                );
                if store.len() >= 2 {
                    prop_assert!(job.is_some());
                    let job = job.unwrap();
                    prop_assert!(job.observations() > 0);
                } else {
                    prop_assert!(job.is_none());
                }
            }
        }
    }
}
