//! Cold-start relocalization: localize a frame against a **loaded**
//! map, with no motion prior and no tracking history.
//!
//! This is the serving-side counterpart of the loop detector: where
//! loop closure asks "is the place I'm tracking one I saw earlier in
//! *this* run?", relocalization asks "where am I in a map somebody
//! else built?" — the question every fresh session against a shared
//! atlas (`eslam_core::Atlas`) must answer before ordinary map-based
//! tracking can take over.
//!
//! The pipeline reuses the PR 5 loop-closure machinery end to end:
//!
//! 1. **BoW retrieval** — the query frame's descriptors quantize
//!    through the persisted [`Vocabulary`] into a tf-idf weighted
//!    [`BowVector`] (idf weights ride in the atlas file; plain tf when
//!    absent), and an inverted word→keyframe index narrows the search
//!    to keyframes sharing words with the query;
//! 2. **cross-checked SIMD match** — candidates are verified with the
//!    same forward+backward brute-force Hamming match the loop
//!    verifier uses, on the process-wide pinned kernel rung;
//! 3. **P3P/RANSAC** — matched pixels solve PnP against the
//!    candidate's promotion-time **camera-frame** landmark positions
//!    (drift-free RGB-D measurements), so the estimated pose is the
//!    relative transform candidate-camera → query-camera, and the
//!    world pose follows by composing with the candidate's stored
//!    pose.
//!
//! Determinism: candidate ranking sorts by (score desc, id asc), the
//! matcher rungs are bit-identical, and RANSAC is seeded — the same
//! query against the same map always returns the same pose.

use crate::keyframe::{KeyframeId, KeyframeStore};
use crate::loop_closure::matched_pairs;
use eslam_features::bow::{BowVector, Vocabulary};
use eslam_features::matcher::active_kernel;
use eslam_features::Descriptor;
use eslam_geometry::pnp::{solve_pnp_ransac, PnpParams};
use eslam_geometry::{PinholeCamera, Se3, Vec2, Vec3};
use std::collections::HashMap;

/// Tuning of the cold-start relocalization pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelocalizationConfig {
    /// How many top-scoring BoW candidates get geometric verification
    /// (the first to verify wins; more candidates = more robustness to
    /// perceptual aliasing, at verification cost).
    pub max_candidates: usize,
    /// Minimum BoW similarity for a keyframe to enter verification.
    pub min_similarity: f64,
    /// Hamming gate of the cross-checked verification match.
    pub match_max_distance: u32,
    /// Minimum cross-checked matches before PnP is attempted.
    pub min_matches: usize,
    /// Minimum PnP inliers for the pose to be accepted.
    pub min_inliers: usize,
    /// P3P/RANSAC configuration of the verification solve.
    pub pnp: PnpParams,
}

impl Default for RelocalizationConfig {
    fn default() -> Self {
        RelocalizationConfig {
            max_candidates: 5,
            min_similarity: 0.05,
            match_max_distance: 64,
            min_matches: 15,
            min_inliers: 12,
            pnp: PnpParams::default(),
        }
    }
}

/// A successful cold-start relocalization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelocalizationResult {
    /// Estimated world-to-camera pose of the query frame, in the
    /// loaded map's world frame.
    pub pose_w2c: Se3,
    /// The keyframe that verified the query.
    pub keyframe: KeyframeId,
    /// BoW similarity of that keyframe to the query.
    pub score: f64,
    /// Cross-checked descriptor matches found by verification.
    pub matches: usize,
    /// PnP inliers supporting the pose.
    pub inliers: usize,
}

/// Precomputed retrieval state over one immutable map snapshot: the
/// per-keyframe (tf-idf) BoW vectors and the inverted word→keyframe
/// index. Build once per loaded map ([`Relocalizer::build`]), query
/// from any number of sessions concurrently (`&self` everywhere — the
/// atlas shares one relocalizer across sessions via its snapshot
/// `Arc`).
#[derive(Debug, Clone, Default)]
pub struct Relocalizer {
    /// Per-keyframe BoW vectors, indexed by keyframe id (empty vector
    /// for keyframes without descriptors).
    bow: Vec<BowVector>,
    /// Word id → keyframes whose vector contains it, ascending.
    inverted: HashMap<u32, Vec<KeyframeId>>,
}

impl Relocalizer {
    /// Quantizes every keyframe of `store` through `vocabulary` and
    /// builds the inverted retrieval index. Uses tf-idf weighting when
    /// the vocabulary carries idf weights, plain term frequency
    /// otherwise (same as [`Vocabulary::tfidf_vector_of`]).
    pub fn build(vocabulary: &Vocabulary, store: &KeyframeStore) -> Relocalizer {
        let mut bow = Vec::with_capacity(store.len());
        let mut inverted: HashMap<u32, Vec<KeyframeId>> = HashMap::new();
        for kf in store.keyframes() {
            let v = vocabulary.tfidf_vector_of(&kf.descriptors);
            for &(word, _) in v.entries() {
                inverted.entry(word).or_default().push(kf.id);
            }
            bow.push(v);
        }
        Relocalizer { bow, inverted }
    }

    /// Number of indexed keyframes.
    pub fn len(&self) -> usize {
        self.bow.len()
    }

    /// Whether the index covers no keyframes.
    pub fn is_empty(&self) -> bool {
        self.bow.is_empty()
    }

    /// Ranks candidate keyframes for a query vector: every keyframe
    /// sharing at least one word, scored by BoW similarity, filtered
    /// by `min_similarity`, ordered by (score desc, id asc), truncated
    /// to `max_candidates`.
    fn candidates(
        &self,
        query: &BowVector,
        config: &RelocalizationConfig,
    ) -> Vec<(KeyframeId, f64)> {
        let mut sharing: Vec<KeyframeId> = Vec::new();
        for &(word, _) in query.entries() {
            if let Some(kfs) = self.inverted.get(&word) {
                sharing.extend_from_slice(kfs);
            }
        }
        sharing.sort_unstable();
        sharing.dedup();
        let mut scored: Vec<(KeyframeId, f64)> = sharing
            .into_iter()
            .map(|id| (id, query.similarity(&self.bow[id])))
            .filter(|&(_, s)| s >= config.min_similarity)
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        scored.truncate(config.max_candidates.max(1));
        scored
    }

    /// Localizes one frame (descriptors + their pixel locations,
    /// index-aligned) against the map snapshot this index was built
    /// over. Returns the first BoW candidate that passes cross-checked
    /// matching and P3P/RANSAC, or `None` when no candidate verifies.
    ///
    /// # Panics
    /// Panics when `descriptors` and `pixels` lengths differ, or when
    /// `store` is not the store this relocalizer was built from (id
    /// ranges disagree).
    pub fn relocalize(
        &self,
        vocabulary: &Vocabulary,
        store: &KeyframeStore,
        camera: &PinholeCamera,
        descriptors: &[Descriptor],
        pixels: &[Vec2],
        config: &RelocalizationConfig,
    ) -> Option<RelocalizationResult> {
        assert_eq!(
            descriptors.len(),
            pixels.len(),
            "descriptor/pixel columns misaligned"
        );
        assert_eq!(
            store.len(),
            self.bow.len(),
            "index built from another store"
        );
        if descriptors.is_empty() || store.is_empty() {
            return None;
        }
        let query = vocabulary.tfidf_vector_of(descriptors);
        let kernel = active_kernel();
        for (id, score) in self.candidates(&query, config) {
            let kf = store.get(id);
            if kf.descriptors.is_empty() {
                continue;
            }
            let pairs = matched_pairs(
                kernel,
                descriptors,
                &kf.descriptors,
                config.match_max_distance,
            );
            if pairs.len() < config.min_matches.max(4) {
                continue;
            }
            // PnP world = the candidate's camera frame at promotion
            // time, so the solved pose is candidate-camera →
            // query-camera; compose with the candidate's stored pose
            // for the query's world-to-camera.
            let world: Vec<Vec3> = pairs
                .iter()
                .map(|&(_, t)| kf.observations[t].position)
                .collect();
            let query_pixels: Vec<Vec2> = pairs.iter().map(|&(q, _)| pixels[q]).collect();
            let Some(pnp) = solve_pnp_ransac(&world, &query_pixels, camera, &config.pnp) else {
                continue;
            };
            if pnp.inliers.len() < config.min_inliers {
                continue;
            }
            return Some(RelocalizationResult {
                pose_w2c: pnp.pose.compose(&kf.pose_w2c),
                keyframe: id,
                score,
                matches: pairs.len(),
                inliers: pnp.inliers.len(),
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyframe::KeyframeObservation;
    use eslam_features::bow::BowParams;

    fn camera() -> PinholeCamera {
        PinholeCamera::tum_fr1()
    }

    /// A deterministic descriptor "family" around a seed pattern.
    fn descriptor_near(pattern: u64, salt: u64) -> Descriptor {
        let mut d = Descriptor::from_words([pattern, !pattern, pattern ^ 0xabcd, pattern]);
        let mut state = salt.wrapping_mul(6364136223846793005).wrapping_add(1);
        for _ in 0..10 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let bit = (state >> 33) as usize % eslam_features::DESCRIPTOR_BITS;
            d.set_bit(bit, !d.bit(bit));
        }
        d
    }

    /// A synthetic "place": a grid of landmarks in front of a pose,
    /// with a family-coded appearance.
    fn place_keyframe(
        store: &mut KeyframeStore,
        frame: usize,
        pose_w2c: Se3,
        pattern: u64,
        tag: u64,
    ) -> KeyframeId {
        let cam = camera();
        let mut observations = Vec::new();
        let mut descriptors = Vec::new();
        let pose_c2w = pose_w2c.inverse();
        for i in 0..40u64 {
            let x = (i % 8) as f64 * 0.25 - 1.0;
            let y = (i / 8) as f64 * 0.25 - 0.5;
            let world = pose_c2w.transform(Vec3::new(x, y, 2.5));
            let position = pose_w2c.transform(world);
            if let Some(pixel) = cam.project(position) {
                observations.push(KeyframeObservation {
                    landmark: tag * 1000 + i,
                    pixel,
                    position,
                });
                descriptors.push(descriptor_near(pattern, tag * 100 + i));
            }
        }
        store.push(
            frame,
            frame as f64 / 30.0,
            pose_w2c,
            observations,
            descriptors,
        )
    }

    fn training_set() -> Vec<Descriptor> {
        let mut all = Vec::new();
        for (f, pattern) in [0u64, u64::MAX, 0xaaaa_aaaa_aaaa_aaaa, 0x0f0f_0f0f_0f0f_0f0f]
            .into_iter()
            .enumerate()
        {
            for i in 0..40 {
                all.push(descriptor_near(pattern, (f as u64) * 100 + i));
            }
        }
        all
    }

    #[test]
    fn relocalizes_to_the_right_place_with_the_right_pose() {
        let mut store = KeyframeStore::new();
        let pose_a = Se3::identity();
        let pose_b = Se3::from_translation(Vec3::new(2.0, 0.0, 0.0));
        place_keyframe(&mut store, 0, pose_a, 0, 0);
        place_keyframe(&mut store, 8, pose_b, u64::MAX, 1);
        let vocab = Vocabulary::train(&training_set(), &BowParams::default()).unwrap();
        let index = Relocalizer::build(&vocab, &store);
        assert_eq!(index.len(), 2);

        // Query: place B's exact appearance and geometry, seen from a
        // slightly different viewpoint.
        let query_pose = pose_b.compose(&Se3::from_translation(Vec3::new(0.05, 0.0, -0.1)));
        let kf = store.get(1);
        let cam = camera();
        let query_c2w = query_pose.inverse();
        let mut descriptors = Vec::new();
        let mut pixels = Vec::new();
        for (obs, d) in kf.observations.iter().zip(&kf.descriptors) {
            // World position from the stored camera-frame snapshot.
            let world = kf.pose_w2c.inverse().transform(obs.position);
            if let Some(pixel) = cam.project(query_pose.transform(world)) {
                descriptors.push(*d);
                pixels.push(pixel);
            }
        }
        let _ = query_c2w;
        let result = index
            .relocalize(
                &vocab,
                &store,
                &cam,
                &descriptors,
                &pixels,
                &RelocalizationConfig::default(),
            )
            .expect("relocalization succeeds");
        assert_eq!(result.keyframe, 1);
        assert!(result.inliers >= 12, "inliers {}", result.inliers);
        let err = (result.pose_w2c.translation - query_pose.translation).norm();
        assert!(err < 1e-6, "translation error {err}");
    }

    #[test]
    fn unknown_views_and_empty_queries_return_none() {
        let mut store = KeyframeStore::new();
        place_keyframe(&mut store, 0, Se3::identity(), 0, 0);
        let vocab = Vocabulary::train(&training_set(), &BowParams::default()).unwrap();
        let index = Relocalizer::build(&vocab, &store);
        let cam = camera();
        let config = RelocalizationConfig::default();

        assert!(index
            .relocalize(&vocab, &store, &cam, &[], &[], &config)
            .is_none());

        // A frame from an appearance family the map never saw: BoW may
        // retrieve something, but verification cannot find enough
        // cross-checked matches.
        let descriptors: Vec<Descriptor> = (0..30)
            .map(|i| descriptor_near(0x1234_5678_9abc_def0, 7000 + i))
            .collect();
        let pixels: Vec<Vec2> = (0..30)
            .map(|i| Vec2::new(40.0 + 10.0 * (i % 6) as f64, 40.0 + 10.0 * (i / 6) as f64))
            .collect();
        assert!(index
            .relocalize(&vocab, &store, &cam, &descriptors, &pixels, &config)
            .is_none());
    }
}
