//! Loop closure: place recognition over the keyframe store, geometric
//! verification, and the Se(3) pose-graph correction.
//!
//! The pipeline turns locally-consistent odometry into a globally
//! consistent map in four stages, mirroring ORB-SLAM's loop thread:
//!
//! 1. **Candidate retrieval** — every keyframe is quantized into a
//!    BoW vector over an online-trained binary vocabulary
//!    (`eslam_features::bow`), retrieved through an inverted word →
//!    keyframe index. Before the vocabulary has enough training
//!    descriptors, a brute-force SIMD descriptor-matching fallback
//!    scores the (gated) candidates directly.
//! 2. **Gating** — a candidate must be temporally distant (keyframe-id
//!    gap), **covisibility-distant** (outside the BFS neighbourhood of
//!    the current keyframe: a place the graph already connects you to
//!    is not a loop), and must out-score the current keyframe's own
//!    covisible neighbours. A candidate region must persist over
//!    [`LoopClosureConfig::consistency`] consecutive keyframes before
//!    it is trusted (temporal consistency).
//! 3. **Geometric verification** — descriptors of the two keyframes are
//!    cross-checked-matched (SIMD Hamming kernel), and the matches feed
//!    the existing P3P + RANSAC pipeline against the candidate's
//!    *camera-frame* landmark positions (recorded at promotion, so the
//!    check is drift-free and survives map culling). Success yields the
//!    measured relative pose `Z = T_cur ∘ T_cand⁻¹`.
//! 4. **Pose-graph correction** — odometry + strong-covisibility edges
//!    snapshot the trajectory as tracked; the verified loop edge pulls
//!    its two ends together and `eslam_geometry::pose_graph`
//!    redistributes the accumulated drift. The outcome carries
//!    corrected keyframe poses *and* re-anchored landmark positions
//!    (each landmark rides with its most recent observing keyframe).
//!
//! Stages 3–4 are packaged as a self-contained [`LoopClosureJob`]
//! (owned snapshot, `'static`) so the runner can execute them inline
//! or on the persistent worker pool with bit-identical results; stage
//! 1–2 run on the tracking thread at keyframe insertion (they are
//! cheap and their state must evolve deterministically).

use crate::covisibility::CovisibilityGraph;
use crate::keyframe::{KeyframeId, KeyframeStore};
use eslam_features::bow::{BowParams, BowVector, Vocabulary};
use eslam_features::matcher::{
    active_kernel, cross_check, match_brute_force_with_kernel, MatchKernel,
};
use eslam_features::Descriptor;
use eslam_geometry::pnp::{solve_pnp_ransac, PnpParams};
use eslam_geometry::pose_graph::{
    optimize_pose_graph, PoseGraphEdge, PoseGraphParams, PoseGraphResult,
};
use eslam_geometry::{PinholeCamera, Se3, Vec2, Vec3};
use std::collections::HashMap;

/// Configuration of the loop-closure pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopClosureConfig {
    /// Whether loop detection runs at all.
    pub enabled: bool,
    /// Vocabulary shape (branching/levels/k-medians rounds).
    pub bow: BowParams,
    /// Pooled keyframe descriptors required before the vocabulary is
    /// trained (the brute-force fallback scores candidates until then).
    pub min_training_descriptors: usize,
    /// Minimum keyframe-id gap between the current keyframe and a
    /// candidate (temporal gate).
    pub min_keyframe_gap: usize,
    /// Candidates within this many covisibility-graph hops of the
    /// current keyframe are rejected. Hop distance is the proxy for
    /// accumulated drift: a place a few hops away is locally consistent
    /// already (the sliding-window BA covers it), while a genuine loop
    /// reconnects regions many hops apart, where only a pose-graph
    /// correction can reconcile the accumulated error.
    pub covisibility_distance: usize,
    /// Minimum edge weight for a hop to count in the gating BFS.
    pub covisibility_min_weight: usize,
    /// A candidate is only a *loop* if the map has forgotten it:
    /// candidates with more than this fraction of their observed
    /// landmarks still alive in the front-end map are rejected —
    /// tracking re-matches live landmarks directly, so a revisit the
    /// map still covers needs no place recognition (this is what keeps
    /// fr1/room's continuously-mapped sweep from closing a redundant
    /// loop while a genuinely forgotten place still fires).
    pub max_alive_fraction: f64,
    /// Absolute floor on the candidate score: the cross-checked
    /// descriptor match fraction (matches / current descriptors).
    pub min_similarity: f64,
    /// How many of the best BoW-ranked candidates are re-scored with
    /// the exact (cross-checked SIMD) descriptor match fraction. BoW
    /// alone ranks; the match fraction decides — an online-trained
    /// vocabulary is small, and places unseen at training time can
    /// collapse onto shared words, so word overlap is a retrieval
    /// signal, not a detection score.
    pub max_bow_candidates: usize,
    /// Consecutive keyframes whose best candidate falls in the same
    /// covisibility group before verification is dispatched.
    pub consistency: usize,
    /// Maximum Hamming distance for a verification descriptor match.
    pub match_max_distance: u32,
    /// Minimum cross-checked matches to attempt PnP.
    pub min_matches: usize,
    /// Minimum PnP inliers for the loop to be accepted.
    pub min_inliers: usize,
    /// Robust PnP configuration for geometric verification.
    pub pnp: PnpParams,
    /// Pose-graph solver parameters.
    pub pose_graph: PoseGraphParams,
    /// Weight of consecutive-keyframe (odometry) edges.
    pub odometry_weight: f64,
    /// Minimum shared-observation count for a covisibility pair to add
    /// a pose-graph edge (beyond the consecutive chain).
    pub covisibility_edge_min_weight: usize,
    /// Weight of those covisibility edges.
    pub covisibility_edge_weight: f64,
    /// Weight of the verified loop edge.
    pub loop_edge_weight: f64,
    /// Keyframes after a dispatched verification before the detector
    /// may fire again (suppresses re-detecting the same loop while the
    /// correction settles).
    pub cooldown: usize,
}

impl Default for LoopClosureConfig {
    fn default() -> Self {
        LoopClosureConfig {
            enabled: true,
            bow: BowParams::default(),
            min_training_descriptors: 512,
            min_keyframe_gap: 8,
            covisibility_distance: 6,
            covisibility_min_weight: 1,
            max_alive_fraction: 0.4,
            min_similarity: 0.15,
            max_bow_candidates: 3,
            consistency: 2,
            match_max_distance: 64,
            min_matches: 20,
            min_inliers: 12,
            pnp: PnpParams::default(),
            pose_graph: PoseGraphParams::default(),
            odometry_weight: 1.0,
            covisibility_edge_min_weight: 30,
            covisibility_edge_weight: 1.0,
            loop_edge_weight: 3.0,
            cooldown: 10,
        }
    }
}

/// A gated, temporally-consistent loop candidate awaiting geometric
/// verification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopCandidate {
    /// The keyframe that (re)visits the place.
    pub current: KeyframeId,
    /// The stored keyframe it appears to revisit.
    pub candidate: KeyframeId,
    /// Retrieval score (BoW similarity, or matched fraction on the
    /// brute-force fallback).
    pub score: f64,
    /// Whether the score came from the vocabulary (false = fallback).
    pub bow_backed: bool,
}

/// Place-recognition state: the online vocabulary, per-keyframe BoW
/// vectors, the inverted index, and the temporal-consistency tracker.
#[derive(Debug, Clone)]
pub struct LoopDetector {
    config: LoopClosureConfig,
    vocabulary: Option<Vocabulary>,
    /// Descriptors pooled for vocabulary training (until trained).
    training: Vec<Descriptor>,
    /// Per-keyframe BoW vectors, store-id aligned (empty vectors before
    /// the vocabulary exists).
    bow: Vec<BowVector>,
    /// Inverted index word → keyframes containing it (id-ascending).
    inverted: HashMap<u32, Vec<KeyframeId>>,
    /// Covisibility group of the previous keyframe's best candidate.
    last_group: Vec<KeyframeId>,
    /// Consecutive keyframes agreeing on that group.
    consistency: usize,
    /// Keyframes observed (monotonic — unaffected by culling).
    seen: usize,
    /// `seen` value before which detection is suppressed.
    cooldown_until: usize,
}

impl LoopDetector {
    /// Creates a detector with the given configuration.
    pub fn new(config: LoopClosureConfig) -> Self {
        LoopDetector {
            config,
            vocabulary: None,
            training: Vec::new(),
            bow: Vec::new(),
            inverted: HashMap::new(),
            last_group: Vec::new(),
            consistency: 0,
            seen: 0,
            cooldown_until: 0,
        }
    }

    /// Whether the vocabulary has been trained (false = the detector is
    /// still pooling descriptors and scoring via brute force).
    pub fn vocabulary_ready(&self) -> bool {
        self.vocabulary.is_some()
    }

    /// Ingests the freshly inserted keyframe `id` (must be the newest
    /// store entry), updates the vocabulary/BoW state, and returns a
    /// temporally-consistent, gated loop candidate if one emerges.
    /// `landmark_alive` reports whether a landmark id is still in the
    /// front-end map (the forgotten-place gate).
    pub fn observe(
        &mut self,
        store: &KeyframeStore,
        covisibility: &CovisibilityGraph,
        id: KeyframeId,
        landmark_alive: &mut dyn FnMut(u64) -> bool,
    ) -> Option<LoopCandidate> {
        debug_assert_eq!(id + 1, store.len(), "observe expects the newest keyframe");
        self.seen += 1;
        let descriptors = &store.get(id).descriptors;

        // Vocabulary bookkeeping: pool until trainable, then quantize
        // everything seen so far (including this keyframe) in id order.
        if self.vocabulary.is_none() {
            self.training.extend_from_slice(descriptors);
            if self.training.len() >= self.config.min_training_descriptors {
                if let Some(vocab) = Vocabulary::train(&self.training, &self.config.bow) {
                    self.vocabulary = Some(vocab);
                    self.training = Vec::new();
                    self.bow.clear();
                    self.inverted.clear();
                    for kf in store.keyframes() {
                        self.index_keyframe(kf.id, &kf.descriptors);
                    }
                }
            }
            if self.vocabulary.is_none() {
                self.bow.push(BowVector::empty());
            }
        } else {
            self.index_keyframe(id, descriptors);
        }
        debug_assert_eq!(self.bow.len(), store.len());

        if descriptors.is_empty() {
            self.reset_consistency();
            return None;
        }

        // Gating: temporally near or covisibility-connected keyframes
        // are not loop candidates.
        let connected = covisibility.within_distance(
            id,
            self.config.covisibility_distance,
            self.config.covisibility_min_weight,
        );
        let max_alive = self.config.max_alive_fraction;
        let mut gated = |c: KeyframeId| -> bool {
            if id.saturating_sub(c) < self.config.min_keyframe_gap.max(1)
                || connected.binary_search(&c).is_ok()
                || store.get(c).descriptors.is_empty()
            {
                return false;
            }
            // Forgotten-place gate: a candidate whose landmarks mostly
            // survive in the live map is a place ordinary map-based
            // tracking still covers, not a loop.
            let observations = &store.get(c).observations;
            if observations.is_empty() {
                return false;
            }
            let alive = observations
                .iter()
                .filter(|o| landmark_alive(o.landmark))
                .count();
            (alive as f64) <= max_alive * (observations.len() as f64)
        };

        let best = match &self.vocabulary {
            Some(_) => self.best_bow_candidate(store, id, covisibility, &mut gated),
            None => self.best_brute_force_candidate(store, id, &mut gated),
        };

        let Some((candidate, score, bow_backed)) = best else {
            self.reset_consistency();
            return None;
        };

        // Temporal consistency: the candidate's covisibility group must
        // overlap the group seen at the previous keyframe.
        let group = covisibility.within_distance(candidate, 1, 1);
        let overlaps = self
            .last_group
            .iter()
            .any(|g| group.binary_search(g).is_ok());
        self.consistency = if overlaps { self.consistency + 1 } else { 1 };
        self.last_group = group;
        if self.consistency < self.config.consistency.max(1) || self.seen < self.cooldown_until {
            return None;
        }
        self.cooldown_until = self.seen + self.config.cooldown;
        self.reset_consistency();
        Some(LoopCandidate {
            current: id,
            candidate,
            score,
            bow_backed,
        })
    }

    /// Applies a keyframe-cull remap (old id → new id, `None` =
    /// removed) so the detector's per-keyframe state follows the store.
    ///
    /// The runner culls *after* inserting a keyframe but *before*
    /// [`LoopDetector::observe`] has indexed it, so the remap may cover
    /// one more (trailing, protected — never culled) keyframe than the
    /// detector knows; the surplus entry is ignored and the vector for
    /// that keyframe arrives with the observe call that follows.
    pub fn apply_remap(&mut self, remap: &[Option<KeyframeId>]) {
        debug_assert!(
            remap.len() >= self.bow.len() && remap[self.bow.len()..].iter().all(|m| m.is_some()),
            "cull remap removed a keyframe the detector has not indexed"
        );
        let old = std::mem::take(&mut self.bow);
        self.bow = old
            .into_iter()
            .zip(remap)
            .filter(|(_, m)| m.is_some())
            .map(|(v, _)| v)
            .collect();
        self.inverted.clear();
        for (id, vector) in self.bow.iter().enumerate() {
            for &(word, _) in vector.entries() {
                self.inverted.entry(word).or_default().push(id);
            }
        }
        let mut group: Vec<KeyframeId> = self
            .last_group
            .iter()
            .filter_map(|&g| remap.get(g).copied().flatten())
            .collect();
        group.sort_unstable();
        self.last_group = group;
    }

    /// Quantizes and indexes one keyframe's descriptors.
    fn index_keyframe(&mut self, id: KeyframeId, descriptors: &[Descriptor]) {
        let vocab = self.vocabulary.as_ref().expect("vocabulary trained");
        let vector = vocab.vector_of(descriptors);
        for &(word, _) in vector.entries() {
            self.inverted.entry(word).or_default().push(id);
        }
        debug_assert_eq!(self.bow.len(), id);
        self.bow.push(vector);
    }

    fn reset_consistency(&mut self) {
        self.consistency = 0;
        self.last_group = Vec::new();
    }

    /// Best gated candidate: BoW similarity through the inverted index
    /// *ranks* (bounded by the current keyframe's own covisible
    /// neighbours — a true revisit should share at least as many words
    /// as a view the graph knows overlaps); the exact cross-checked
    /// match fraction of the top-ranked few *scores*.
    fn best_bow_candidate(
        &self,
        store: &KeyframeStore,
        id: KeyframeId,
        covisibility: &CovisibilityGraph,
        gated: &mut dyn FnMut(KeyframeId) -> bool,
    ) -> Option<(KeyframeId, f64, bool)> {
        let current = &self.bow[id];
        if current.is_empty() {
            return None;
        }
        // The weakest direct covisible neighbour still shows the same
        // place; a revisit from across the map should share words at
        // least as strongly.
        let mut reference: f64 = 0.0;
        for (neighbor, _) in covisibility.neighbors(id, 1) {
            let s = current.similarity(&self.bow[neighbor]);
            reference = reference.max(s);
        }

        // Deterministic sparse retrieval: every keyframe sharing ≥ 1
        // word, visited in ascending id order.
        let mut sharing: Vec<KeyframeId> = Vec::new();
        for &(word, _) in current.entries() {
            if let Some(ids) = self.inverted.get(&word) {
                sharing.extend(ids.iter().copied());
            }
        }
        sharing.sort_unstable();
        sharing.dedup();

        let mut ranked: Vec<(KeyframeId, f64)> = sharing
            .into_iter()
            .filter(|&c| c != id && gated(c))
            .map(|c| (c, current.similarity(&self.bow[c])))
            .filter(|&(_, s)| s >= reference * 0.8)
            .collect();
        // Highest word overlap first; ties toward older keyframes.
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        ranked.truncate(self.config.max_bow_candidates.max(1));

        let kernel = active_kernel();
        let descriptors = &store.get(id).descriptors;
        let mut best: Option<(KeyframeId, f64)> = None;
        for (c, _) in ranked {
            let matches = matched_pairs(
                kernel,
                descriptors,
                &store.get(c).descriptors,
                self.config.match_max_distance,
            );
            let score = matches.len() as f64 / descriptors.len().max(1) as f64;
            if score >= self.config.min_similarity && best.is_none_or(|(_, s)| score > s) {
                best = Some((c, score));
            }
        }
        best.map(|(c, s)| (c, s, true))
    }

    /// Brute-force fallback while the vocabulary is still training:
    /// score every gated candidate by its cross-checked SIMD match
    /// fraction against the current keyframe.
    fn best_brute_force_candidate(
        &self,
        store: &KeyframeStore,
        id: KeyframeId,
        gated: &mut dyn FnMut(KeyframeId) -> bool,
    ) -> Option<(KeyframeId, f64, bool)> {
        let kernel = active_kernel();
        let current = &store.get(id).descriptors;
        let mut best: Option<(KeyframeId, f64)> = None;
        for kf in store.keyframes() {
            if kf.id == id || !gated(kf.id) {
                continue;
            }
            let matches = matched_pairs(
                kernel,
                current,
                &kf.descriptors,
                self.config.match_max_distance,
            );
            let score = matches.len() as f64 / current.len().max(1) as f64;
            if score >= self.config.min_similarity && best.is_none_or(|(_, s)| score > s) {
                best = Some((kf.id, score));
            }
        }
        best.map(|(c, s)| (c, s, false))
    }
}

/// Cross-checked descriptor matches `(query index, train index)` on a
/// pinned kernel (single-threaded — the job may already be running on a
/// pool worker; every kernel rung is bit-identical, so which one the
/// host dispatches does not affect results).
pub(crate) fn matched_pairs(
    kernel: MatchKernel,
    query: &[Descriptor],
    train: &[Descriptor],
    max_distance: u32,
) -> Vec<(usize, usize)> {
    let forward = match_brute_force_with_kernel(kernel, query, train, max_distance);
    let backward = match_brute_force_with_kernel(kernel, train, query, max_distance);
    cross_check(&forward, &backward)
        .into_iter()
        .map(|m| (m.query, m.train))
        .collect()
}

/// A corrected keyframe pose from the pose-graph solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrectedKeyframe {
    /// Keyframe id in the store (at snapshot time).
    pub id: KeyframeId,
    /// Source frame index in the processed sequence.
    pub frame_index: usize,
    /// World-to-camera pose before the correction (the snapshot).
    pub old_pose_w2c: Se3,
    /// Corrected world-to-camera pose.
    pub pose_w2c: Se3,
}

/// Everything one verified-and-solved loop closure produces.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopClosureOutcome {
    /// The keyframe that closed the loop.
    pub current: KeyframeId,
    /// The revisited keyframe.
    pub candidate: KeyframeId,
    /// Retrieval score of the candidate.
    pub score: f64,
    /// Cross-checked descriptor matches found by verification.
    pub matches: usize,
    /// PnP inliers (0 when PnP failed outright).
    pub inliers: usize,
    /// Whether the loop passed geometric verification and produced a
    /// correction (`false` → every correction field is empty).
    pub accepted: bool,
    /// Corrected keyframe poses (every snapshot keyframe, in store
    /// order — uncorrected ones carry their old pose so application is
    /// uniform).
    pub keyframes: Vec<CorrectedKeyframe>,
    /// Re-anchored landmark positions by stable id.
    pub landmarks: Vec<(u64, Vec3)>,
    /// Pose-graph solver diagnostics (`None` when verification failed
    /// before the solve).
    pub result: Option<PoseGraphResult>,
    /// Wall-clock time of verification + solve, milliseconds (excluded
    /// from the bit-identity guarantee).
    pub solve_ms: f64,
}

/// A self-contained verification + pose-graph job: owns every input so
/// it can run on any thread (`'static`, as `WorkerPool::submit`
/// requires), snapshotted at the keyframe that triggered it.
#[derive(Debug, Clone)]
pub struct LoopClosureJob {
    candidate: LoopCandidate,
    /// Verification inputs: current keyframe appearance…
    current_descriptors: Vec<Descriptor>,
    current_pixels: Vec<Vec2>,
    /// …and candidate keyframe appearance + camera-frame geometry.
    candidate_descriptors: Vec<Descriptor>,
    candidate_positions: Vec<Vec3>,
    kernel: MatchKernel,
    camera: PinholeCamera,
    /// Pose-graph inputs: all keyframe poses (w2c) + odometry and
    /// covisibility edges, without the loop edge (verification adds it).
    poses: Vec<Se3>,
    frame_indices: Vec<usize>,
    edges: Vec<PoseGraphEdge>,
    /// Landmarks to re-anchor: (stable id, current world position,
    /// slot of the most recent observing keyframe).
    landmarks: Vec<(u64, Vec3, usize)>,
    config: LoopClosureConfig,
}

impl LoopClosureJob {
    /// Snapshots a verification + correction job from the mapper state.
    /// `position_of` resolves a landmark id to its current map position
    /// (landmarks culled from the map are skipped for re-anchoring).
    pub fn snapshot(
        candidate: LoopCandidate,
        store: &KeyframeStore,
        covisibility: &CovisibilityGraph,
        camera: &PinholeCamera,
        config: &LoopClosureConfig,
        position_of: &mut dyn FnMut(u64) -> Option<Vec3>,
    ) -> LoopClosureJob {
        let cur = store.get(candidate.current);
        let cand = store.get(candidate.candidate);
        let poses: Vec<Se3> = store.keyframes().iter().map(|kf| kf.pose_w2c).collect();
        let frame_indices: Vec<usize> = store.keyframes().iter().map(|kf| kf.frame_index).collect();

        // Odometry chain + strong covisibility edges, measured from the
        // snapshot poses (they are satisfied exactly at start; only the
        // loop edge will pull).
        let mut edges: Vec<PoseGraphEdge> = Vec::new();
        for i in 1..poses.len() {
            edges.push(PoseGraphEdge::from_current(
                &poses,
                i - 1,
                i,
                config.odometry_weight,
            ));
        }
        for a in 0..poses.len() {
            for (b, _) in covisibility.neighbors(a, config.covisibility_edge_min_weight) {
                if b > a + 1 {
                    edges.push(PoseGraphEdge::from_current(
                        &poses,
                        a,
                        b,
                        config.covisibility_edge_weight,
                    ));
                }
            }
        }

        // Anchor every landmark still in the map to its most recent
        // observing keyframe (deterministic first-seen order, slot
        // overwritten by later observations). The *last* observer's
        // correction is the one consistent with how the tracker
        // currently uses the landmark — anchoring to the first observer
        // re-corrects resurrected old landmarks into their old frame
        // and tears the live map into populations corrected by
        // different amounts, which destabilizes feature-poor frames
        // right after the closure.
        let mut landmarks: Vec<(u64, Vec3, usize)> = Vec::new();
        let mut slot_of: HashMap<u64, usize> = HashMap::new();
        for (slot, kf) in store.keyframes().iter().enumerate() {
            for obs in &kf.observations {
                match slot_of.entry(obs.landmark) {
                    std::collections::hash_map::Entry::Vacant(entry) => {
                        if let Some(position) = position_of(obs.landmark) {
                            entry.insert(landmarks.len());
                            landmarks.push((obs.landmark, position, slot));
                        }
                    }
                    std::collections::hash_map::Entry::Occupied(entry) => {
                        landmarks[*entry.get()].2 = slot;
                    }
                }
            }
        }

        LoopClosureJob {
            candidate,
            current_descriptors: cur.descriptors.clone(),
            current_pixels: cur.observations.iter().map(|o| o.pixel).collect(),
            candidate_descriptors: cand.descriptors.clone(),
            candidate_positions: cand.observations.iter().map(|o| o.position).collect(),
            kernel: active_kernel(),
            camera: *camera,
            poses,
            frame_indices,
            edges,
            landmarks,
            config: *config,
        }
    }

    /// Number of pose-graph nodes in the snapshot.
    pub fn nodes(&self) -> usize {
        self.poses.len()
    }

    /// Number of non-loop pose-graph edges in the snapshot.
    pub fn edges(&self) -> usize {
        self.edges.len()
    }

    /// Runs verification and, if it passes, the pose-graph correction.
    pub fn run(self) -> LoopClosureOutcome {
        let start = std::time::Instant::now();
        let mut outcome = LoopClosureOutcome {
            current: self.candidate.current,
            candidate: self.candidate.candidate,
            score: self.candidate.score,
            matches: 0,
            inliers: 0,
            accepted: false,
            keyframes: Vec::new(),
            landmarks: Vec::new(),
            result: None,
            solve_ms: 0.0,
        };

        // Geometric verification: cross-checked matches → P3P/RANSAC
        // against the candidate's promotion-time camera-frame geometry.
        let pairs = matched_pairs(
            self.kernel,
            &self.current_descriptors,
            &self.candidate_descriptors,
            self.config.match_max_distance,
        );
        outcome.matches = pairs.len();
        if pairs.len() < self.config.min_matches.max(4) {
            outcome.solve_ms = start.elapsed().as_secs_f64() * 1e3;
            return outcome;
        }
        let world: Vec<Vec3> = pairs
            .iter()
            .map(|&(_, t)| self.candidate_positions[t])
            .collect();
        let pixels: Vec<Vec2> = pairs.iter().map(|&(q, _)| self.current_pixels[q]).collect();
        let Some(pnp) = solve_pnp_ransac(&world, &pixels, &self.camera, &self.config.pnp) else {
            outcome.solve_ms = start.elapsed().as_secs_f64() * 1e3;
            return outcome;
        };
        outcome.inliers = pnp.inliers.len();
        if pnp.inliers.len() < self.config.min_inliers {
            outcome.solve_ms = start.elapsed().as_secs_f64() * 1e3;
            return outcome;
        }

        // The "world" of the PnP problem is the candidate's camera
        // frame, so the estimated pose *is* the measured relative
        // transform candidate-camera → current-camera — exactly the
        // loop edge `Z = T_cur ∘ T_cand⁻¹`.
        let mut edges = self.edges;
        edges.push(PoseGraphEdge {
            from: self.candidate.candidate,
            to: self.candidate.current,
            measured: pnp.pose,
            weight: self.config.loop_edge_weight,
        });

        let mut poses = self.poses.clone();
        let mut fixed = vec![false; poses.len()];
        fixed[0] = true;
        let result = optimize_pose_graph(&mut poses, &edges, &fixed, &self.config.pose_graph);
        outcome.result = Some(result);
        outcome.accepted = true;
        outcome.keyframes = self
            .poses
            .iter()
            .zip(&poses)
            .enumerate()
            .map(|(slot, (&old, &new))| CorrectedKeyframe {
                id: slot,
                frame_index: self.frame_indices[slot],
                old_pose_w2c: old,
                pose_w2c: new,
            })
            .collect();
        // Each landmark rides with its most recent observer: re-express
        // in that keyframe's camera frame under the old pose, back to
        // the world under the corrected one.
        outcome.landmarks = self
            .landmarks
            .iter()
            .map(|&(id, position, slot)| {
                let cam = self.poses[slot].transform(position);
                (id, poses[slot].inverse().transform(cam))
            })
            .collect();
        outcome.solve_ms = start.elapsed().as_secs_f64() * 1e3;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyframe::KeyframeObservation;
    use crate::mapper::{KeyframeData, LocalMapper};

    fn camera() -> PinholeCamera {
        PinholeCamera::tum_fr1()
    }

    /// A synthetic "place": a grid of landmarks with distinctive
    /// deterministic descriptors, offset into a region of the world.
    fn place(tag: u64, offset: Vec3) -> (Vec<Vec3>, Vec<Descriptor>, u64) {
        let base = tag * 1000;
        let points: Vec<Vec3> = (0..60)
            .map(|i| {
                Vec3::new(
                    ((i % 10) as f64) * 0.3 - 1.4,
                    ((i / 10) as f64) * 0.3 - 0.8,
                    2.6 + ((i * 7) % 5) as f64 * 0.25,
                ) + offset
            })
            .collect();
        let descriptors: Vec<Descriptor> = (0..60)
            .map(|i| {
                // Place-specific pattern + point-specific bits: same
                // place re-observed yields identical descriptors,
                // different places are ~128 bits apart.
                let p = tag.wrapping_mul(0x9e3779b97f4a7c15);
                Descriptor::from_words([
                    p ^ (1u64 << (i % 64)),
                    !p ^ (1u64 << ((i * 3) % 64)),
                    p.rotate_left(i as u32 % 61),
                    p ^ (i as u64),
                ])
            })
            .collect();
        (points, descriptors, base)
    }

    /// Builds KeyframeData viewing `place` from `pose`.
    fn view(
        frame_index: usize,
        pose: Se3,
        points: &[Vec3],
        descriptors: &[Descriptor],
        base: u64,
    ) -> KeyframeData {
        let camera = camera();
        let mut observations = Vec::new();
        let mut descs = Vec::new();
        for (i, (&p, &d)) in points.iter().zip(descriptors).enumerate() {
            let cam = pose.transform(p);
            if let Some(uv) = camera.project(cam) {
                observations.push(KeyframeObservation {
                    landmark: base + i as u64,
                    pixel: uv,
                    position: cam,
                });
                descs.push(d);
            }
        }
        KeyframeData {
            frame_index,
            timestamp: frame_index as f64 / 30.0,
            pose_w2c: pose,
            observations,
            descriptors: descs,
        }
    }

    /// Keyframe data walking through `n_places` distinct places (three
    /// keyframes each), then returning to place 0 with `drift` on the
    /// final keyframe's tracked pose (its observations — what the depth
    /// sensor measures — stay true to the scene). The revisit creates
    /// fresh landmark ids, modelling a map that culled the originals:
    /// covisibility does NOT connect the loop ends.
    fn looped_frames(n_places: usize, drift: Vec3) -> Vec<KeyframeData> {
        let mut out = Vec::new();
        let mut frame = 0usize;
        for tag in 0..n_places as u64 {
            let (points, descriptors, base) = place(tag, Vec3::new(tag as f64 * 40.0, 0.0, 0.0));
            for k in 0..3 {
                let pose = Se3::from_translation(Vec3::new(
                    tag as f64 * 40.0 + k as f64 * 0.05,
                    0.0,
                    0.02 * k as f64,
                ));
                out.push(view(frame, pose, &points, &descriptors, base));
                frame += 3;
            }
        }
        let (points, descriptors, _) = place(0, Vec3::ZERO);
        let true_obs_pose = Se3::from_translation(Vec3::new(0.02, 0.0, 0.01));
        let mut data = view(frame, true_obs_pose, &points, &descriptors, 900_000);
        data.pose_w2c = Se3::from_translation(true_obs_pose.translation + drift);
        out.push(data);
        out
    }

    /// Inserts every frame, running the detector incrementally; returns
    /// the mapper, the final keyframe id and the last candidate fired.
    fn looped_mapper_with_detector(
        n_places: usize,
        drift: Vec3,
        config: LoopClosureConfig,
    ) -> (LocalMapper, KeyframeId, LoopDetector, Option<LoopCandidate>) {
        let mut mapper = LocalMapper::new();
        let mut detector = LoopDetector::new(config);
        let mut fired = None;
        let mut last = 0;
        for data in looped_frames(n_places, drift) {
            last = mapper.insert_keyframe(data);
            // The scenario models a map that forgot every old place.
            if let Some(c) =
                detector.observe(mapper.store(), mapper.covisibility(), last, &mut |_| false)
            {
                fired = Some(c);
            }
        }
        (mapper, last, detector, fired)
    }

    /// Convenience: mapper + final keyframe id without detection.
    fn looped_mapper(n_places: usize, drift: Vec3) -> (LocalMapper, KeyframeId) {
        let mut mapper = LocalMapper::new();
        let mut last = 0;
        for data in looped_frames(n_places, drift) {
            last = mapper.insert_keyframe(data);
        }
        (mapper, last)
    }

    fn detector_config() -> LoopClosureConfig {
        LoopClosureConfig {
            min_training_descriptors: 100,
            min_keyframe_gap: 4,
            consistency: 1,
            min_matches: 15,
            min_inliers: 10,
            ..Default::default()
        }
    }

    #[test]
    fn detector_finds_the_revisited_place() {
        let (_, current, detector, fired) =
            looped_mapper_with_detector(4, Vec3::new(0.4, -0.2, 0.3), detector_config());
        let c = fired.expect("loop candidate");
        assert_eq!(c.current, current);
        // The candidate is one of the three place-0 keyframes.
        assert!(c.candidate <= 2, "candidate {}", c.candidate);
        assert!(c.score > 0.1);
        assert!(detector.vocabulary_ready());
        assert!(c.bow_backed);
    }

    #[test]
    fn brute_force_fallback_fires_without_a_vocabulary() {
        // An unreachable training threshold keeps the vocabulary
        // untrained; the SIMD brute-force fallback must still find the
        // revisit.
        let config = LoopClosureConfig {
            min_training_descriptors: usize::MAX,
            ..detector_config()
        };
        let (_, current, detector, fired) =
            looped_mapper_with_detector(4, Vec3::new(0.4, -0.2, 0.3), config);
        assert!(!detector.vocabulary_ready());
        let c = fired.expect("fallback candidate");
        assert_eq!(c.current, current);
        assert!(c.candidate <= 2, "candidate {}", c.candidate);
        assert!(!c.bow_backed);
    }

    #[test]
    fn alive_landmarks_gate_suppresses_remembered_places() {
        // Same revisit scenario, but the map still holds every old
        // landmark: ordinary tracking covers the place, so the
        // forgotten-place gate must keep the detector silent.
        let mut mapper = LocalMapper::new();
        let mut detector = LoopDetector::new(detector_config());
        for data in looped_frames(4, Vec3::new(0.4, -0.2, 0.3)) {
            let id = mapper.insert_keyframe(data);
            let fired = detector.observe(mapper.store(), mapper.covisibility(), id, &mut |_| true);
            assert!(fired.is_none(), "fired on a fully-remembered place at {id}");
        }
    }

    #[test]
    fn no_candidate_without_a_revisit() {
        // Distinct places only (drop the revisit tail): nothing should
        // fire under either scoring path.
        for min_training in [100usize, usize::MAX] {
            let mut mapper = LocalMapper::new();
            let config = LoopClosureConfig {
                min_training_descriptors: min_training,
                ..detector_config()
            };
            let mut detector = LoopDetector::new(config);
            let mut frames = looped_frames(5, Vec3::ZERO);
            frames.pop();
            for data in frames {
                let id = mapper.insert_keyframe(data);
                let fired =
                    detector.observe(mapper.store(), mapper.covisibility(), id, &mut |_| false);
                assert!(fired.is_none(), "false positive at keyframe {id}");
            }
        }
    }

    #[test]
    fn verification_and_pose_graph_correct_the_drift() {
        let drift = Vec3::new(0.4, -0.2, 0.3);
        let (mapper, current) = looped_mapper(4, drift);
        let config = detector_config();
        let candidate = LoopCandidate {
            current,
            candidate: 0,
            score: 0.5,
            bow_backed: true,
        };
        let job = LoopClosureJob::snapshot(
            candidate,
            mapper.store(),
            mapper.covisibility(),
            &camera(),
            &config,
            &mut |_| None,
        );
        assert_eq!(job.nodes(), mapper.store().len());
        assert!(job.edges() >= mapper.store().len() - 1);
        let outcome = job.run();
        assert!(outcome.accepted, "verification failed: {outcome:?}");
        assert!(outcome.matches >= 15);
        assert!(outcome.inliers >= 10);
        // The loop keyframe's corrected pose sheds most of the drift.
        let corrected = outcome.keyframes.last().unwrap();
        let before = drift.norm();
        let after = (corrected.pose_w2c.translation
            - Se3::from_translation(Vec3::new(0.02, 0.0, 0.01)).translation)
            .norm();
        assert!(
            after < before * 0.35,
            "drift {before:.3} -> {after:.3} not corrected"
        );
    }

    #[test]
    fn rejected_verification_reports_and_corrects_nothing() {
        // Mismatched appearance: the "revisit" shows a different place,
        // so cross-checked matches collapse and the job rejects.
        let (mapper, current) = looped_mapper(3, Vec3::ZERO);
        let candidate = LoopCandidate {
            current,
            candidate: 3, // a keyframe of a *different* place
            score: 0.2,
            bow_backed: true,
        };
        let job = LoopClosureJob::snapshot(
            candidate,
            mapper.store(),
            mapper.covisibility(),
            &camera(),
            &detector_config(),
            &mut |_| None,
        );
        let outcome = job.run();
        assert!(!outcome.accepted);
        assert!(outcome.keyframes.is_empty());
        assert!(outcome.landmarks.is_empty());
        assert!(outcome.result.is_none());
    }

    #[test]
    fn landmarks_ride_with_their_most_recent_observer() {
        let drift = Vec3::new(0.3, 0.0, 0.2);
        let (mapper, current) = looped_mapper(4, drift);
        let candidate = LoopCandidate {
            current,
            candidate: 1,
            score: 0.5,
            bow_backed: true,
        };
        // Give every landmark of the drifted tail a live map position.
        let store = mapper.store();
        let mut positions: HashMap<u64, Vec3> = HashMap::new();
        let mut last_observer: HashMap<u64, usize> = HashMap::new();
        for kf in store.keyframes() {
            for obs in &kf.observations {
                positions
                    .entry(obs.landmark)
                    .or_insert_with(|| kf.pose_w2c.inverse().transform(obs.position));
                last_observer.insert(obs.landmark, kf.id);
            }
        }
        let job = LoopClosureJob::snapshot(
            candidate,
            store,
            mapper.covisibility(),
            &camera(),
            &detector_config(),
            &mut |id| positions.get(&id).copied(),
        );
        let outcome = job.run();
        assert!(outcome.accepted);
        assert_eq!(outcome.landmarks.len(), positions.len());
        // Every landmark is re-expressed through the correction of its
        // most recent observing keyframe.
        for &(id, new_pos) in &outcome.landmarks {
            let slot = last_observer[&id];
            let kf = &outcome.keyframes[slot];
            let expected = kf
                .pose_w2c
                .inverse()
                .transform(kf.old_pose_w2c.transform(positions[&id]));
            assert!(
                (new_pos - expected).norm() < 1e-12,
                "landmark {id} not anchored to keyframe {slot}"
            );
        }
        // And a landmark whose last observer is the fixed gauge
        // keyframe would not move at all (the gauge pose is held).
        let gauge = &outcome.keyframes[0];
        assert_eq!(gauge.old_pose_w2c, gauge.pose_w2c);
    }

    #[test]
    fn detector_remap_keeps_index_consistent() {
        let config = LoopClosureConfig {
            min_training_descriptors: 60,
            ..detector_config()
        };
        let (mapper, _, mut detector, _) = looped_mapper_with_detector(3, Vec3::ZERO, config);
        assert!(detector.vocabulary_ready());
        let n = mapper.store().len();
        // Cull keyframe 1 and 4.
        let remap: Vec<Option<usize>> = (0..n)
            .map(|i| match i {
                1 => None,
                4 => None,
                i if i < 1 => Some(i),
                i if i < 4 => Some(i - 1),
                i => Some(i - 2),
            })
            .collect();
        detector.apply_remap(&remap);
        assert_eq!(detector.bow.len(), n - 2);
        for ids in detector.inverted.values() {
            for &id in ids {
                assert!(id < n - 2, "stale id {id} in inverted index");
            }
        }
    }
}
