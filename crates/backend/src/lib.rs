//! **eslam-backend** — the keyframe backend of the eSLAM reproduction:
//! covisibility-linked keyframes and windowed local bundle adjustment
//! running asynchronously on the shared worker pool.
//!
//! The paper's system (§2.1) updates the map only at key frames; full
//! ORB-SLAM pairs that front-end with a *local mapping* backend that
//! keeps a keyframe graph and jointly refines recent poses and
//! landmarks. This crate supplies that backend:
//!
//! * [`keyframe`] — the [`KeyframeStore`]: per-keyframe poses, landmark
//!   observations (with promotion-time camera-frame positions) and
//!   BRIEF descriptor columns, addressed by stable landmark ids;
//! * [`covisibility`] — the [`CovisibilityGraph`], keyframes weighted
//!   by shared-observation counts with deterministic neighbour and
//!   BFS-distance queries;
//! * [`mapper`] — the [`LocalMapper`] (insertion, redundant-keyframe
//!   culling with id remapping, problem building), the
//!   [`BackendRunner`] driving sliding-window local BA
//!   (`eslam_geometry::ba`) **and** the loop-closure pipeline either
//!   inline or on the persistent `WorkerPool` via its fire-and-collect
//!   `submit`/`TaskHandle` API, and the [`BackendMode`]/[`BACKEND_ENV`]
//!   execution toggle;
//! * [`loop_closure`] — place recognition over an online-trained binary
//!   BoW vocabulary (`eslam_features::bow`, inverted word→keyframe
//!   index, SIMD brute-force fallback while the vocabulary trains),
//!   candidate gating by covisibility distance + temporal consistency,
//!   geometric verification through the existing P3P/RANSAC path, and
//!   the Se(3) pose-graph drift correction
//!   (`eslam_geometry::pose_graph`) with landmark re-anchoring;
//! * [`relocalize`] — cold-start relocalization against a **loaded**
//!   map (the serving-side use of the same machinery): tf-idf BoW
//!   retrieval over a persisted vocabulary, cross-checked SIMD
//!   matching, and P3P/RANSAC against promotion-time camera-frame
//!   geometry, returning a [`RelocalizationResult`] world pose.
//!
//! # Determinism contract
//!
//! Async mode is **bit-identical** to sync mode: every solve consumes
//! an owned snapshot, the solver itself is deterministic, and results
//! are applied only at the tracker's next frame boundary (via
//! [`BackendRunner::take_refinement`]) — never "whenever the thread
//! happens to finish". The workspace tier
//! `tests/backend_equivalence.rs` enforces this across pool shapes and
//! sequences; CI additionally runs the whole suite under
//! `ESLAM_BACKEND=sync` and `=async`.
//!
//! # Example
//!
//! ```
//! use eslam_backend::{BackendConfig, BackendMode, BackendRunner, KeyframeData};
//! use eslam_backend::keyframe::KeyframeObservation;
//! use eslam_features::pool::WorkerPool;
//! use eslam_geometry::{PinholeCamera, Se3, Vec3};
//!
//! let camera = PinholeCamera::tum_fr1();
//! let mut config = BackendConfig::default();
//! config.mode = BackendMode::Sync;
//! if let Some(mut runner) = BackendRunner::new(config, camera) {
//!     let pool = WorkerPool::new(1);
//!     let landmarks: Vec<Vec3> =
//!         (0..20).map(|i| Vec3::new(i as f64 * 0.1 - 1.0, 0.2, 3.0)).collect();
//!     for (frame, pose) in [(0usize, Se3::identity()),
//!                           (5, Se3::from_translation(Vec3::new(0.1, 0.0, 0.0)))] {
//!         let observations = landmarks.iter().enumerate()
//!             .filter_map(|(i, p)| {
//!                 let cam = pose.transform(*p);
//!                 camera.project(cam)
//!                     .map(|uv| KeyframeObservation { landmark: i as u64, pixel: uv,
//!                                                     position: cam })
//!             })
//!             .collect();
//!         runner.on_keyframe(
//!             &pool,
//!             KeyframeData { frame_index: frame, timestamp: frame as f64 / 30.0,
//!                            pose_w2c: pose, observations, descriptors: Vec::new() },
//!             &mut |id| landmarks.get(id as usize).copied(),
//!         );
//!     }
//!     // The refinement is collected at the next frame boundary.
//!     let outcome = runner.take_refinement().expect("one solve dispatched");
//!     assert_eq!(outcome.keyframes.len(), 2);
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod covisibility;
pub mod keyframe;
pub mod loop_closure;
pub mod mapper;
pub mod relocalize;

pub use covisibility::CovisibilityGraph;
pub use keyframe::{Keyframe, KeyframeId, KeyframeObservation, KeyframeStore};
pub use loop_closure::{
    CorrectedKeyframe, LoopCandidate, LoopClosureConfig, LoopClosureJob, LoopClosureOutcome,
    LoopDetector,
};
pub use mapper::{
    BackendConfig, BackendMode, BackendRunner, BackendStats, KeyframeCullConfig, KeyframeData,
    LocalBaJob, LocalBaOutcome, LocalMapper, RefinedKeyframe, BACKEND_ENV,
};
pub use relocalize::{RelocalizationConfig, RelocalizationResult, Relocalizer};
