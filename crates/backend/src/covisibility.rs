//! The covisibility graph: keyframes weighted by shared landmark
//! observations.
//!
//! Two keyframes are *covisible* when they observe common landmarks;
//! the edge weight is the number of shared observations, exactly the
//! ORB-SLAM covisibility notion. The graph is maintained incrementally
//! as keyframes are inserted (the mapper computes each new keyframe's
//! shared-landmark counts from its inverted landmark→keyframes index)
//! and answers the neighbourhood queries the backend uses to reason
//! about map connectivity.
//!
//! Determinism: adjacency is stored in [`BTreeMap`]s and
//! [`CovisibilityGraph::neighbors`] orders ties by id, so every query
//! is reproducible — a requirement for the backend's bit-identical
//! sync/async guarantee.

use crate::keyframe::KeyframeId;
use std::collections::BTreeMap;

/// Undirected keyframe graph weighted by shared-observation counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CovisibilityGraph {
    /// Per-keyframe adjacency: neighbour id → shared observations.
    adjacency: Vec<BTreeMap<KeyframeId, usize>>,
}

impl CovisibilityGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        CovisibilityGraph::default()
    }

    /// Number of keyframe nodes.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Appends a node for the next keyframe id and returns it.
    pub fn add_node(&mut self) -> KeyframeId {
        self.adjacency.push(BTreeMap::new());
        self.adjacency.len() - 1
    }

    /// Adds `shared` to the weight of edge `(a, b)` (both directions).
    ///
    /// # Panics
    /// Panics if either id is out of range, or `a == b` (keyframes are
    /// not covisible with themselves).
    pub fn accumulate(&mut self, a: KeyframeId, b: KeyframeId, shared: usize) {
        assert_ne!(a, b, "covisibility is irreflexive");
        assert!(a < self.adjacency.len() && b < self.adjacency.len());
        if shared == 0 {
            return;
        }
        *self.adjacency[a].entry(b).or_insert(0) += shared;
        *self.adjacency[b].entry(a).or_insert(0) += shared;
    }

    /// The weight of edge `(a, b)` (0 when not connected).
    ///
    /// # Panics
    /// Panics if `a` is out of range.
    pub fn weight(&self, a: KeyframeId, b: KeyframeId) -> usize {
        self.adjacency[a].get(&b).copied().unwrap_or(0)
    }

    /// Neighbours of `a` with weight ≥ `min_weight`, ordered by
    /// descending weight (ties: ascending id — deterministic).
    ///
    /// # Panics
    /// Panics if `a` is out of range.
    pub fn neighbors(&self, a: KeyframeId, min_weight: usize) -> Vec<(KeyframeId, usize)> {
        let mut out: Vec<(KeyframeId, usize)> = self.adjacency[a]
            .iter()
            .filter(|(_, &w)| w >= min_weight.max(1))
            .map(|(&id, &w)| (id, w))
            .collect();
        out.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        out
    }

    /// Total degree (sum of edge weights) of keyframe `a`.
    ///
    /// # Panics
    /// Panics if `a` is out of range.
    pub fn degree(&self, a: KeyframeId) -> usize {
        self.adjacency[a].values().sum()
    }

    /// Every keyframe reachable from `a` within `max_hops` edges of
    /// weight ≥ `min_weight`, **including `a` itself** — the
    /// covisibility neighbourhood the loop detector gates candidates
    /// against ("a true loop is a place the graph does *not* already
    /// connect you to"). BFS over the BTreeMap adjacency, so the
    /// traversal (and the returned sorted ids) is deterministic.
    ///
    /// # Panics
    /// Panics if `a` is out of range.
    pub fn within_distance(
        &self,
        a: KeyframeId,
        max_hops: usize,
        min_weight: usize,
    ) -> Vec<KeyframeId> {
        assert!(a < self.adjacency.len());
        let mut seen = vec![false; self.adjacency.len()];
        seen[a] = true;
        let mut frontier = vec![a];
        for _ in 0..max_hops {
            let mut next = Vec::new();
            for &node in &frontier {
                for (&nb, &w) in &self.adjacency[node] {
                    if w >= min_weight.max(1) && !seen[nb] {
                        seen[nb] = true;
                        next.push(nb);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        seen.iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(id, _)| id)
            .collect()
    }

    /// Every undirected edge as `(a, b, weight)` with `a < b`, ordered
    /// by `(a, b)` — the canonical export for serialization (each edge
    /// appears once; [`CovisibilityGraph::from_edges`] restores both
    /// directions).
    pub fn edges(&self) -> Vec<(KeyframeId, KeyframeId, usize)> {
        let mut out = Vec::new();
        for (a, adj) in self.adjacency.iter().enumerate() {
            for (&b, &w) in adj.range(a + 1..) {
                out.push((a, b, w));
            }
        }
        out
    }

    /// Rebuilds a graph over `nodes` keyframes from an undirected edge
    /// list (the atlas-load path). Edges must be in range, irreflexive
    /// and positively weighted; duplicates (either orientation)
    /// accumulate, matching incremental construction. Returns a
    /// description of the first violation instead of panicking, so
    /// corrupted files surface as typed errors upstream.
    pub fn from_edges(
        nodes: usize,
        edges: &[(KeyframeId, KeyframeId, usize)],
    ) -> Result<CovisibilityGraph, String> {
        let mut g = CovisibilityGraph {
            adjacency: vec![BTreeMap::new(); nodes],
        };
        for &(a, b, w) in edges {
            if a >= nodes || b >= nodes {
                return Err(format!("edge ({a}, {b}) out of range ({nodes} nodes)"));
            }
            if a == b {
                return Err(format!(
                    "self edge on keyframe {a} (covisibility is irreflexive)"
                ));
            }
            if w == 0 {
                return Err(format!("zero-weight edge ({a}, {b})"));
            }
            g.accumulate(a, b, w);
        }
        Ok(g)
    }

    /// Applies a keyframe-cull remap (old id → new id, `None` =
    /// removed): drops removed nodes and their edges, renumbers the
    /// rest. The remap must come from the paired
    /// [`crate::keyframe::KeyframeStore::retain_remap`] call, so
    /// surviving ids stay dense and ordered.
    ///
    /// # Panics
    /// Panics if the remap length disagrees with the node count.
    pub fn apply_remap(&mut self, remap: &[Option<KeyframeId>]) {
        assert_eq!(remap.len(), self.adjacency.len(), "remap length mismatch");
        let mut out: Vec<BTreeMap<KeyframeId, usize>> = Vec::new();
        for (old, adj) in self.adjacency.iter().enumerate() {
            if remap[old].is_none() {
                continue;
            }
            let mut rebuilt = BTreeMap::new();
            for (&nb, &w) in adj {
                if let Some(new_nb) = remap[nb] {
                    rebuilt.insert(new_nb, w);
                }
            }
            out.push(rebuilt);
        }
        self.adjacency = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CovisibilityGraph {
        let mut g = CovisibilityGraph::new();
        for _ in 0..3 {
            g.add_node();
        }
        g.accumulate(0, 1, 10);
        g.accumulate(1, 2, 4);
        g.accumulate(0, 2, 4);
        g
    }

    #[test]
    fn weights_are_symmetric() {
        let g = triangle();
        for a in 0..3 {
            for b in 0..3 {
                if a != b {
                    assert_eq!(g.weight(a, b), g.weight(b, a), "({a},{b})");
                }
            }
        }
        assert_eq!(g.weight(0, 1), 10);
        assert_eq!(g.weight(2, 2), 0);
    }

    #[test]
    fn accumulate_sums_shared_counts() {
        let mut g = triangle();
        g.accumulate(0, 1, 5);
        assert_eq!(g.weight(0, 1), 15);
        assert_eq!(g.degree(0), 19);
        // Zero-weight accumulation is a no-op (no phantom edges).
        g.accumulate(0, 2, 0);
        assert_eq!(g.weight(0, 2), 4);
    }

    #[test]
    fn neighbors_sorted_by_weight_then_id() {
        let g = triangle();
        assert_eq!(g.neighbors(0, 1), vec![(1, 10), (2, 4)]);
        // Ties break by ascending id: 1 and 2 both share 4 with node 2?
        // Build an explicit tie.
        let mut g = CovisibilityGraph::new();
        for _ in 0..4 {
            g.add_node();
        }
        g.accumulate(0, 3, 7);
        g.accumulate(0, 1, 7);
        g.accumulate(0, 2, 9);
        assert_eq!(g.neighbors(0, 1), vec![(2, 9), (1, 7), (3, 7)]);
        // min_weight filters.
        assert_eq!(g.neighbors(0, 8), vec![(2, 9)]);
    }

    #[test]
    #[should_panic(expected = "irreflexive")]
    fn self_edges_rejected() {
        let mut g = triangle();
        g.accumulate(1, 1, 3);
    }

    #[test]
    fn within_distance_walks_hops() {
        // A chain 0—1—2—3 plus an isolated node 4.
        let mut g = CovisibilityGraph::new();
        for _ in 0..5 {
            g.add_node();
        }
        g.accumulate(0, 1, 5);
        g.accumulate(1, 2, 5);
        g.accumulate(2, 3, 1);
        assert_eq!(g.within_distance(0, 0, 1), vec![0]);
        assert_eq!(g.within_distance(0, 1, 1), vec![0, 1]);
        assert_eq!(g.within_distance(0, 2, 1), vec![0, 1, 2]);
        assert_eq!(g.within_distance(0, 3, 1), vec![0, 1, 2, 3]);
        assert_eq!(g.within_distance(0, 99, 1), vec![0, 1, 2, 3]);
        // Weight gating prunes the weak 2—3 edge.
        assert_eq!(g.within_distance(0, 99, 2), vec![0, 1, 2]);
        // The isolated node reaches only itself.
        assert_eq!(g.within_distance(4, 10, 1), vec![4]);
    }

    #[test]
    fn edge_export_round_trips() {
        let g = triangle();
        let edges = g.edges();
        assert_eq!(edges, vec![(0, 1, 10), (0, 2, 4), (1, 2, 4)]);
        let rebuilt = CovisibilityGraph::from_edges(g.len(), &edges).unwrap();
        assert_eq!(g, rebuilt);
        // Malformed edge lists are rejected, not panicked on.
        assert!(CovisibilityGraph::from_edges(2, &[(0, 2, 1)]).is_err());
        assert!(CovisibilityGraph::from_edges(2, &[(1, 1, 1)]).is_err());
        assert!(CovisibilityGraph::from_edges(2, &[(0, 1, 0)]).is_err());
    }

    #[test]
    fn apply_remap_drops_nodes_and_renumbers() {
        let mut g = triangle();
        // Remove node 1: 0 and 2 stay connected by their direct edge,
        // renumbered to 0 and 1.
        g.apply_remap(&[Some(0), None, Some(1)]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.weight(0, 1), 4);
        assert_eq!(g.weight(1, 0), 4);
        assert_eq!(g.neighbors(0, 1), vec![(1, 4)]);
        // Degrees lost the removed node's contributions.
        assert_eq!(g.degree(0), 4);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Symmetry holds for any accumulation sequence, and every
            /// neighbour list is consistent with the weights.
            #[test]
            fn covisibility_weight_symmetry(
                nodes in 2usize..8,
                edges in proptest::collection::vec(
                    (0usize..8, 0usize..8, 0usize..20), 0..32),
            ) {
                let mut g = CovisibilityGraph::new();
                for _ in 0..nodes {
                    g.add_node();
                }
                for (a, b, w) in edges {
                    let (a, b) = (a % nodes, b % nodes);
                    if a != b {
                        g.accumulate(a, b, w);
                    }
                }
                for a in 0..nodes {
                    for b in 0..nodes {
                        if a != b {
                            prop_assert_eq!(g.weight(a, b), g.weight(b, a));
                        }
                    }
                    // Neighbour lists agree with weight lookups and are
                    // sorted by (weight desc, id asc).
                    let n = g.neighbors(a, 1);
                    for w in n.windows(2) {
                        prop_assert!(w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0));
                    }
                    for (b, w) in n {
                        prop_assert_eq!(g.weight(a, b), w);
                        prop_assert!(w >= 1);
                    }
                }
            }
        }
    }
}
