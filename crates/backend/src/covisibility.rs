//! The covisibility graph: keyframes weighted by shared landmark
//! observations.
//!
//! Two keyframes are *covisible* when they observe common landmarks;
//! the edge weight is the number of shared observations, exactly the
//! ORB-SLAM covisibility notion. The graph is maintained incrementally
//! as keyframes are inserted (the mapper computes each new keyframe's
//! shared-landmark counts from its inverted landmark→keyframes index)
//! and answers the neighbourhood queries the backend uses to reason
//! about map connectivity.
//!
//! Determinism: adjacency is stored in [`BTreeMap`]s and
//! [`CovisibilityGraph::neighbors`] orders ties by id, so every query
//! is reproducible — a requirement for the backend's bit-identical
//! sync/async guarantee.

use crate::keyframe::KeyframeId;
use std::collections::BTreeMap;

/// Undirected keyframe graph weighted by shared-observation counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CovisibilityGraph {
    /// Per-keyframe adjacency: neighbour id → shared observations.
    adjacency: Vec<BTreeMap<KeyframeId, usize>>,
}

impl CovisibilityGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        CovisibilityGraph::default()
    }

    /// Number of keyframe nodes.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Appends a node for the next keyframe id and returns it.
    pub fn add_node(&mut self) -> KeyframeId {
        self.adjacency.push(BTreeMap::new());
        self.adjacency.len() - 1
    }

    /// Adds `shared` to the weight of edge `(a, b)` (both directions).
    ///
    /// # Panics
    /// Panics if either id is out of range, or `a == b` (keyframes are
    /// not covisible with themselves).
    pub fn accumulate(&mut self, a: KeyframeId, b: KeyframeId, shared: usize) {
        assert_ne!(a, b, "covisibility is irreflexive");
        assert!(a < self.adjacency.len() && b < self.adjacency.len());
        if shared == 0 {
            return;
        }
        *self.adjacency[a].entry(b).or_insert(0) += shared;
        *self.adjacency[b].entry(a).or_insert(0) += shared;
    }

    /// The weight of edge `(a, b)` (0 when not connected).
    ///
    /// # Panics
    /// Panics if `a` is out of range.
    pub fn weight(&self, a: KeyframeId, b: KeyframeId) -> usize {
        self.adjacency[a].get(&b).copied().unwrap_or(0)
    }

    /// Neighbours of `a` with weight ≥ `min_weight`, ordered by
    /// descending weight (ties: ascending id — deterministic).
    ///
    /// # Panics
    /// Panics if `a` is out of range.
    pub fn neighbors(&self, a: KeyframeId, min_weight: usize) -> Vec<(KeyframeId, usize)> {
        let mut out: Vec<(KeyframeId, usize)> = self.adjacency[a]
            .iter()
            .filter(|(_, &w)| w >= min_weight.max(1))
            .map(|(&id, &w)| (id, w))
            .collect();
        out.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        out
    }

    /// Total degree (sum of edge weights) of keyframe `a`.
    ///
    /// # Panics
    /// Panics if `a` is out of range.
    pub fn degree(&self, a: KeyframeId) -> usize {
        self.adjacency[a].values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CovisibilityGraph {
        let mut g = CovisibilityGraph::new();
        for _ in 0..3 {
            g.add_node();
        }
        g.accumulate(0, 1, 10);
        g.accumulate(1, 2, 4);
        g.accumulate(0, 2, 4);
        g
    }

    #[test]
    fn weights_are_symmetric() {
        let g = triangle();
        for a in 0..3 {
            for b in 0..3 {
                if a != b {
                    assert_eq!(g.weight(a, b), g.weight(b, a), "({a},{b})");
                }
            }
        }
        assert_eq!(g.weight(0, 1), 10);
        assert_eq!(g.weight(2, 2), 0);
    }

    #[test]
    fn accumulate_sums_shared_counts() {
        let mut g = triangle();
        g.accumulate(0, 1, 5);
        assert_eq!(g.weight(0, 1), 15);
        assert_eq!(g.degree(0), 19);
        // Zero-weight accumulation is a no-op (no phantom edges).
        g.accumulate(0, 2, 0);
        assert_eq!(g.weight(0, 2), 4);
    }

    #[test]
    fn neighbors_sorted_by_weight_then_id() {
        let g = triangle();
        assert_eq!(g.neighbors(0, 1), vec![(1, 10), (2, 4)]);
        // Ties break by ascending id: 1 and 2 both share 4 with node 2?
        // Build an explicit tie.
        let mut g = CovisibilityGraph::new();
        for _ in 0..4 {
            g.add_node();
        }
        g.accumulate(0, 3, 7);
        g.accumulate(0, 1, 7);
        g.accumulate(0, 2, 9);
        assert_eq!(g.neighbors(0, 1), vec![(2, 9), (1, 7), (3, 7)]);
        // min_weight filters.
        assert_eq!(g.neighbors(0, 8), vec![(2, 9)]);
    }

    #[test]
    #[should_panic(expected = "irreflexive")]
    fn self_edges_rejected() {
        let mut g = triangle();
        g.accumulate(1, 1, 3);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Symmetry holds for any accumulation sequence, and every
            /// neighbour list is consistent with the weights.
            #[test]
            fn covisibility_weight_symmetry(
                nodes in 2usize..8,
                edges in proptest::collection::vec(
                    (0usize..8, 0usize..8, 0usize..20), 0..32),
            ) {
                let mut g = CovisibilityGraph::new();
                for _ in 0..nodes {
                    g.add_node();
                }
                for (a, b, w) in edges {
                    let (a, b) = (a % nodes, b % nodes);
                    if a != b {
                        g.accumulate(a, b, w);
                    }
                }
                for a in 0..nodes {
                    for b in 0..nodes {
                        if a != b {
                            prop_assert_eq!(g.weight(a, b), g.weight(b, a));
                        }
                    }
                    // Neighbour lists agree with weight lookups and are
                    // sorted by (weight desc, id asc).
                    let n = g.neighbors(a, 1);
                    for w in n.windows(2) {
                        prop_assert!(w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0));
                    }
                    for (b, w) in n {
                        prop_assert_eq!(g.weight(a, b), w);
                        prop_assert!(w >= 1);
                    }
                }
            }
        }
    }
}
