//! Keyframe storage: per-keyframe poses and landmark observations.
//!
//! A [`Keyframe`] is the backend's unit of map structure (§2.1: the map
//! is updated only at key frames): the tracked world-to-camera pose at
//! the moment the frame was promoted, plus the pixel observation of
//! every landmark the frame either matched or created. Landmarks are
//! referenced by their **stable id** (`u64`), never by map index — the
//! front-end map culls and reorders freely without invalidating the
//! observation graph.
//!
//! The [`KeyframeStore`] is append-only: keyframe ids are dense indices
//! in insertion order, which is what makes the sliding local-BA window
//! ("the last K keyframes") a simple suffix slice.

use eslam_geometry::{Se3, Vec2};

/// Identifier of a keyframe: its dense insertion index in the
/// [`KeyframeStore`].
pub type KeyframeId = usize;

/// One pixel observation of a landmark from a keyframe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyframeObservation {
    /// Stable id of the observed landmark (the map's point id).
    pub landmark: u64,
    /// Observed pixel location in the keyframe's image.
    pub pixel: Vec2,
}

/// A keyframe: pose + observations, the backend's optimization node.
#[derive(Debug, Clone, PartialEq)]
pub struct Keyframe {
    /// Dense id (insertion index in the store).
    pub id: KeyframeId,
    /// Index of the source frame in the processed sequence.
    pub frame_index: usize,
    /// Frame timestamp, seconds.
    pub timestamp: f64,
    /// World-to-camera pose; refined in place by local BA.
    pub pose_w2c: Se3,
    /// Landmark observations (matched + created in this keyframe).
    pub observations: Vec<KeyframeObservation>,
}

/// Append-only keyframe store with dense ids.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KeyframeStore {
    keyframes: Vec<Keyframe>,
}

impl KeyframeStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        KeyframeStore::default()
    }

    /// Number of keyframes.
    pub fn len(&self) -> usize {
        self.keyframes.len()
    }

    /// Whether the store holds no keyframes.
    pub fn is_empty(&self) -> bool {
        self.keyframes.is_empty()
    }

    /// All keyframes in insertion order.
    pub fn keyframes(&self) -> &[Keyframe] {
        &self.keyframes
    }

    /// The keyframe with the given id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn get(&self, id: KeyframeId) -> &Keyframe {
        &self.keyframes[id]
    }

    /// The most recent keyframe, if any.
    pub fn last(&self) -> Option<&Keyframe> {
        self.keyframes.last()
    }

    /// Appends a keyframe, assigning the next dense id.
    pub fn push(
        &mut self,
        frame_index: usize,
        timestamp: f64,
        pose_w2c: Se3,
        observations: Vec<KeyframeObservation>,
    ) -> KeyframeId {
        let id = self.keyframes.len();
        self.keyframes.push(Keyframe {
            id,
            frame_index,
            timestamp,
            pose_w2c,
            observations,
        });
        id
    }

    /// Overwrites the pose of keyframe `id` (the BA swap-in).
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn set_pose(&mut self, id: KeyframeId, pose_w2c: Se3) {
        self.keyframes[id].pose_w2c = pose_w2c;
    }

    /// The trailing `k` keyframes (fewer when the store is smaller) —
    /// the sliding local-BA window.
    pub fn window(&self, k: usize) -> &[Keyframe] {
        let start = self.keyframes.len().saturating_sub(k);
        &self.keyframes[start..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eslam_geometry::Vec3;

    fn obs(landmark: u64) -> KeyframeObservation {
        KeyframeObservation {
            landmark,
            pixel: Vec2::new(landmark as f64, 2.0 * landmark as f64),
        }
    }

    #[test]
    fn ids_are_dense_insertion_indices() {
        let mut store = KeyframeStore::new();
        assert!(store.is_empty());
        let a = store.push(0, 0.0, Se3::identity(), vec![obs(1), obs(2)]);
        let b = store.push(5, 0.17, Se3::from_translation(Vec3::X), vec![obs(2)]);
        assert_eq!((a, b), (0, 1));
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(1).frame_index, 5);
        assert_eq!(store.get(0).observations.len(), 2);
        assert_eq!(store.last().unwrap().id, 1);
    }

    #[test]
    fn set_pose_swaps_in_refined_pose() {
        let mut store = KeyframeStore::new();
        store.push(0, 0.0, Se3::identity(), Vec::new());
        let refined = Se3::from_translation(Vec3::new(0.1, 0.0, -0.2));
        store.set_pose(0, refined);
        assert_eq!(store.get(0).pose_w2c, refined);
    }

    #[test]
    fn window_is_a_suffix() {
        let mut store = KeyframeStore::new();
        for i in 0..6 {
            store.push(i, i as f64, Se3::identity(), Vec::new());
        }
        let w = store.window(4);
        assert_eq!(w.len(), 4);
        assert_eq!(w[0].id, 2);
        assert_eq!(w[3].id, 5);
        // Larger than the store: everything.
        assert_eq!(store.window(100).len(), 6);
        assert_eq!(store.window(0).len(), 0);
    }
}
