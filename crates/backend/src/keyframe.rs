//! Keyframe storage: per-keyframe poses, landmark observations and
//! appearance descriptors.
//!
//! A [`Keyframe`] is the backend's unit of map structure (§2.1: the map
//! is updated only at key frames): the tracked world-to-camera pose at
//! the moment the frame was promoted, plus the pixel observation of
//! every landmark the frame either matched or created. Landmarks are
//! referenced by their **stable id** (`u64`), never by map index — the
//! front-end map culls and reorders freely without invalidating the
//! observation graph.
//!
//! Two loop-closure additions ride on each observation/keyframe:
//!
//! * every [`KeyframeObservation`] records the landmark's **camera-frame
//!   position at promotion time** — self-contained, drift-free 3-D for
//!   the place-recognition verifier, valid even after the front-end map
//!   has culled the landmark;
//! * every [`Keyframe`] keeps the **BRIEF descriptor column** aligned
//!   with its observations — the raw material of the BoW vectors and
//!   the brute-force loop-matching fallback.
//!
//! The [`KeyframeStore`] assigns dense ids in insertion order, which is
//! what makes the sliding local-BA window ("the last K keyframes") a
//! simple suffix slice. Keyframe culling compacts the store
//! ([`KeyframeStore::retain_remap`]) and reports an old→new id remap so
//! the covisibility graph and the loop detector can follow.

use eslam_features::Descriptor;
use eslam_geometry::{Se3, Vec2, Vec3};

/// Identifier of a keyframe: its dense insertion index in the
/// [`KeyframeStore`] (compacted by culling — always dense).
pub type KeyframeId = usize;

/// One pixel observation of a landmark from a keyframe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyframeObservation {
    /// Stable id of the observed landmark (the map's point id).
    pub landmark: u64,
    /// Observed pixel location in the keyframe's image.
    pub pixel: Vec2,
    /// Position of the landmark in **this keyframe's camera frame at
    /// promotion time** — what the RGB-D sensor measured, so it is
    /// drift-free, survives later pose refinements, and stays valid
    /// after the front-end map culls the landmark. The loop verifier
    /// solves PnP directly against these.
    pub position: Vec3,
}

/// A keyframe: pose + observations + descriptors, the backend's
/// optimization and place-recognition node.
#[derive(Debug, Clone, PartialEq)]
pub struct Keyframe {
    /// Dense id (insertion index in the store; remapped by culling).
    pub id: KeyframeId,
    /// Index of the source frame in the processed sequence.
    pub frame_index: usize,
    /// Frame timestamp, seconds.
    pub timestamp: f64,
    /// World-to-camera pose; refined in place by local BA and the
    /// loop-closure pose graph.
    pub pose_w2c: Se3,
    /// Landmark observations (matched + created in this keyframe).
    pub observations: Vec<KeyframeObservation>,
    /// BRIEF descriptors, index-aligned with `observations` (empty when
    /// the producer supplies none — loop closure then skips this
    /// keyframe as a candidate).
    pub descriptors: Vec<Descriptor>,
}

/// Append-only keyframe store with dense ids (compacted by culling).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KeyframeStore {
    keyframes: Vec<Keyframe>,
}

impl KeyframeStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        KeyframeStore::default()
    }

    /// Number of keyframes.
    pub fn len(&self) -> usize {
        self.keyframes.len()
    }

    /// Whether the store holds no keyframes.
    pub fn is_empty(&self) -> bool {
        self.keyframes.is_empty()
    }

    /// All keyframes in insertion order.
    pub fn keyframes(&self) -> &[Keyframe] {
        &self.keyframes
    }

    /// The keyframe with the given id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn get(&self, id: KeyframeId) -> &Keyframe {
        &self.keyframes[id]
    }

    /// The most recent keyframe, if any.
    pub fn last(&self) -> Option<&Keyframe> {
        self.keyframes.last()
    }

    /// Appends a keyframe, assigning the next dense id. `descriptors`
    /// must be index-aligned with `observations` (or empty).
    ///
    /// # Panics
    /// Panics when a non-empty descriptor column disagrees with the
    /// observation count.
    pub fn push(
        &mut self,
        frame_index: usize,
        timestamp: f64,
        pose_w2c: Se3,
        observations: Vec<KeyframeObservation>,
        descriptors: Vec<Descriptor>,
    ) -> KeyframeId {
        assert!(
            descriptors.is_empty() || descriptors.len() == observations.len(),
            "descriptor column misaligned: {} descriptors, {} observations",
            descriptors.len(),
            observations.len()
        );
        let id = self.keyframes.len();
        self.keyframes.push(Keyframe {
            id,
            frame_index,
            timestamp,
            pose_w2c,
            observations,
            descriptors,
        });
        id
    }

    /// Overwrites the pose of keyframe `id` (the BA / pose-graph
    /// swap-in).
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn set_pose(&mut self, id: KeyframeId, pose_w2c: Se3) {
        self.keyframes[id].pose_w2c = pose_w2c;
    }

    /// The trailing `k` keyframes (fewer when the store is smaller) —
    /// the sliding local-BA window.
    pub fn window(&self, k: usize) -> &[Keyframe] {
        let start = self.keyframes.len().saturating_sub(k);
        &self.keyframes[start..]
    }

    /// Rebuilds a store from deserialized keyframes (the atlas-load
    /// path), re-validating the invariants `push` establishes: ids are
    /// dense insertion indices and every non-empty descriptor column is
    /// index-aligned with its observations. Returns a description of
    /// the first violation, so a corrupted file surfaces as a typed
    /// error upstream instead of a panic deep in the backend.
    pub fn from_keyframes(keyframes: Vec<Keyframe>) -> Result<KeyframeStore, String> {
        for (i, kf) in keyframes.iter().enumerate() {
            if kf.id != i {
                return Err(format!(
                    "keyframe {} has id {} (ids must be dense)",
                    i, kf.id
                ));
            }
            if !kf.descriptors.is_empty() && kf.descriptors.len() != kf.observations.len() {
                return Err(format!(
                    "keyframe {i} descriptor column misaligned: {} descriptors, {} observations",
                    kf.descriptors.len(),
                    kf.observations.len()
                ));
            }
        }
        Ok(KeyframeStore { keyframes })
    }

    /// Removes every keyframe for which `keep` returns `false`,
    /// compacting ids to stay dense. Returns the old→new id remap
    /// (`None` entries are removed keyframes); `None` when nothing was
    /// removed.
    pub fn retain_remap(
        &mut self,
        mut keep: impl FnMut(&Keyframe) -> bool,
    ) -> Option<Vec<Option<KeyframeId>>> {
        let mut remap: Vec<Option<KeyframeId>> = Vec::with_capacity(self.keyframes.len());
        let mut next = 0usize;
        let mut removed = false;
        for kf in &self.keyframes {
            if keep(kf) {
                remap.push(Some(next));
                next += 1;
            } else {
                remap.push(None);
                removed = true;
            }
        }
        if !removed {
            return None;
        }
        self.keyframes.retain(|kf| remap[kf.id].is_some());
        for (slot, kf) in self.keyframes.iter_mut().enumerate() {
            kf.id = slot;
        }
        Some(remap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eslam_geometry::Vec3;

    fn obs(landmark: u64) -> KeyframeObservation {
        KeyframeObservation {
            landmark,
            pixel: Vec2::new(landmark as f64, 2.0 * landmark as f64),
            position: Vec3::new(landmark as f64, 0.0, 2.0),
        }
    }

    fn desc(tag: u64) -> Descriptor {
        Descriptor::from_words([tag, tag ^ 0xff, 0, 1])
    }

    #[test]
    fn ids_are_dense_insertion_indices() {
        let mut store = KeyframeStore::new();
        assert!(store.is_empty());
        let a = store.push(
            0,
            0.0,
            Se3::identity(),
            vec![obs(1), obs(2)],
            vec![desc(1), desc(2)],
        );
        let b = store.push(
            5,
            0.17,
            Se3::from_translation(Vec3::X),
            vec![obs(2)],
            vec![desc(2)],
        );
        assert_eq!((a, b), (0, 1));
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(1).frame_index, 5);
        assert_eq!(store.get(0).observations.len(), 2);
        assert_eq!(store.get(0).descriptors.len(), 2);
        assert_eq!(store.last().unwrap().id, 1);
    }

    #[test]
    fn set_pose_swaps_in_refined_pose() {
        let mut store = KeyframeStore::new();
        store.push(0, 0.0, Se3::identity(), Vec::new(), Vec::new());
        let refined = Se3::from_translation(Vec3::new(0.1, 0.0, -0.2));
        store.set_pose(0, refined);
        assert_eq!(store.get(0).pose_w2c, refined);
    }

    #[test]
    fn window_is_a_suffix() {
        let mut store = KeyframeStore::new();
        for i in 0..6 {
            store.push(i, i as f64, Se3::identity(), Vec::new(), Vec::new());
        }
        let w = store.window(4);
        assert_eq!(w.len(), 4);
        assert_eq!(w[0].id, 2);
        assert_eq!(w[3].id, 5);
        // Larger than the store: everything.
        assert_eq!(store.window(100).len(), 6);
        assert_eq!(store.window(0).len(), 0);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_descriptor_column_rejected() {
        let mut store = KeyframeStore::new();
        store.push(0, 0.0, Se3::identity(), vec![obs(1), obs(2)], vec![desc(1)]);
    }

    #[test]
    fn retain_remap_compacts_ids() {
        let mut store = KeyframeStore::new();
        for i in 0..5 {
            store.push(
                i * 2,
                i as f64,
                Se3::identity(),
                vec![obs(i as u64)],
                vec![desc(i as u64)],
            );
        }
        // Drop keyframes 1 and 3.
        let remap = store
            .retain_remap(|kf| kf.id != 1 && kf.id != 3)
            .expect("removed");
        assert_eq!(remap, vec![Some(0), None, Some(1), None, Some(2)]);
        assert_eq!(store.len(), 3);
        for (new_id, kf) in store.keyframes().iter().enumerate() {
            assert_eq!(kf.id, new_id, "ids stay dense");
        }
        // Surviving payloads kept their contents (frame 4 was old id 2).
        assert_eq!(store.get(1).frame_index, 4);
        assert_eq!(store.get(1).observations[0].landmark, 2);
        // Nothing removed → None.
        assert!(store.retain_remap(|_| true).is_none());
    }
}
