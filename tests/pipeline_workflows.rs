//! Integration tests of the §3.1 workflow rescheduling on real rendered
//! frames: identical outputs, different latency and memory, as the paper
//! argues.

use eslam_dataset::sequence::SequenceSpec;
use eslam_features::orb::{OrbConfig, OrbExtractor, Workflow};
use eslam_hw::extractor::{ExtractionWorkload, ExtractorModel};

fn rendered_gray() -> eslam_image::GrayImage {
    SequenceSpec::paper_sequences(1, 0.5)[2]
        .build()
        .frame(0)
        .gray
}

#[test]
fn workflows_identical_outputs_on_rendered_frame() {
    let gray = rendered_gray();
    let original = OrbExtractor::new(OrbConfig {
        workflow: Workflow::Original,
        ..Default::default()
    })
    .extract(&gray);
    let rescheduled = OrbExtractor::new(OrbConfig {
        workflow: Workflow::Rescheduled,
        ..Default::default()
    })
    .extract(&gray);
    assert!(!original.is_empty());
    assert_eq!(original.keypoints, rescheduled.keypoints);
    assert_eq!(original.descriptors, rescheduled.descriptors);
}

#[test]
fn rescheduled_workflow_computes_extra_descriptors() {
    // The M − N overhead of §3.1, measured on real content.
    let gray = rendered_gray();
    let features = OrbExtractor::new(OrbConfig {
        workflow: Workflow::Rescheduled,
        ..Default::default()
    })
    .extract(&gray);
    assert_eq!(
        features.stats.descriptors_computed,
        features.stats.candidates
    );
    assert!(features.stats.candidates >= features.stats.kept);
}

#[test]
fn rescheduled_timing_beats_original_on_measured_workload() {
    let gray = rendered_gray();
    let features = OrbExtractor::new(OrbConfig::default()).extract(&gray);
    let workload = ExtractionWorkload::from_pyramid(
        gray.width(),
        gray.height(),
        &OrbConfig::default().pyramid,
        features.stats.candidates as u64,
        features.stats.kept as u64,
    );
    let model = ExtractorModel::default();
    let rescheduled = model.extraction_timing(&workload, Workflow::Rescheduled);
    let original = model.extraction_timing(&workload, Workflow::Original);
    assert!(
        rescheduled.total < original.total,
        "rescheduled {} vs original {}",
        rescheduled.total,
        original.total
    );
}

#[test]
fn rescheduled_memory_footprint_is_streaming_only() {
    let gray = rendered_gray();
    let workload = ExtractionWorkload::from_pyramid(
        gray.width(),
        gray.height(),
        &OrbConfig::default().pyramid,
        2000,
        1024,
    );
    let model = ExtractorModel::default();
    let r = model.memory_footprint(&workload, Workflow::Rescheduled);
    let o = model.memory_footprint(&workload, Workflow::Original);
    assert_eq!(r.buffer_bits, 0);
    assert!(o.buffer_bits > 0);
    assert_eq!(r.streaming_bits, o.streaming_bits);
}
