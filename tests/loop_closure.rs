//! The loop-closure tier: place recognition must fire on trajectories
//! that genuinely revisit their start (the `loop/*` sequences), must
//! stay silent on the five paper sequences (zero false positives), the
//! pose-graph correction must reduce end-of-run ATE against the
//! local-BA-only baseline, and the whole pipeline — detection,
//! verification, correction propagation — must stay **bit-identical**
//! between the sync and async backend modes (the CI kernel × prefetch ×
//! backend matrix re-runs this tier under every combination).
//!
//! The loop scenario: the `loop/*` trajectories return exactly to
//! their start pose while the middle of the run faces other walls. A
//! tightened map-cull age retires the start landmarks long before the
//! camera returns, so the revisit cannot be absorbed by ordinary
//! map-based tracking — the only way to reconnect the loop ends is the
//! place-recognition path under test.

use eslam_core::{run_sequence, BackendMode, PrefetchMode, RunResult, SlamConfig, Stage};
use eslam_dataset::sequence::SequenceSpec;

const IMAGE_SCALE: f64 = 0.25;
/// Frames per loop sequence: long enough that the start landmarks age
/// out of the map (see `map_cull_age` below) and odometry drift
/// accumulates before the revisit.
const LOOP_FRAMES: usize = 48;

/// The tier's configuration: the paper defaults at quarter scale, with
/// a map-cull age short enough that a 48-frame loop genuinely forgets
/// its starting landmarks (at the default 45 the whole map survives
/// the loop and tracking silently re-uses it — no loop to close).
fn config() -> SlamConfig {
    let mut cfg = SlamConfig::scaled_for_tests(1.0 / IMAGE_SCALE);
    cfg.map_cull_age = 12;
    cfg
}

fn run(spec: &SequenceSpec, mode: BackendMode, loop_enabled: bool) -> RunResult {
    let seq = spec.build();
    let mut cfg = config();
    cfg.backend.mode = mode;
    cfg.backend.loop_closure.enabled = loop_enabled;
    run_sequence(&seq, cfg)
}

/// Whether the backend is forced off entirely via `ESLAM_BACKEND`
/// (every loop-closure assertion is then vacuous). Forcing sync or
/// async is fine: the tier's config-driven mode requests then resolve
/// to the pinned mode and every comparison still must hold.
fn backend_forced_off() -> bool {
    BackendMode::Sync.resolved() == BackendMode::Off
}

#[test]
fn no_false_positives_on_paper_sequences() {
    if backend_forced_off() {
        eprintln!("ESLAM_BACKEND=off; skipping loop-closure assertions");
        return;
    }
    // The five paper sequences, at their stock configuration, never
    // revisit a *forgotten* place — fr1/room sweeps the room but its
    // landmarks stay mapped the whole way around, so the revisit is
    // covisibility-connected and gated out. The loop closer must not
    // fire on any of them. (Under an artificially short map-cull age
    // room genuinely forgets its start and becomes a true loop
    // scenario — that is the loop tier's job, not a false positive.)
    let cfg = SlamConfig::scaled_for_tests(1.0 / IMAGE_SCALE);
    for spec in &SequenceSpec::paper_sequences(24, IMAGE_SCALE) {
        let seq = spec.build();
        let result = run_sequence(&seq, cfg);
        let stats = result.backend.expect("backend on");
        assert_eq!(
            stats.loops_closed, 0,
            "{}: false-positive loop closure (candidates {}, rejected {})",
            spec.name, stats.loop_candidates, stats.loops_rejected
        );
        assert!(
            result.reports.iter().all(|r| !r.loop_closed),
            "{}: report flags a closure",
            spec.name
        );
        // No correction applied → the estimate equals the BA-only
        // reference bit-exactly.
        assert_eq!(
            result.estimate.poses(),
            result.ba_estimate.poses(),
            "{}: ba_estimate diverged without a closure",
            spec.name
        );
    }
}

#[test]
fn detector_fires_and_correction_reduces_ate_on_loop_sequences() {
    if backend_forced_off() {
        eprintln!("ESLAM_BACKEND=off; skipping loop-closure assertions");
        return;
    }
    // The acceptance oracle: on at least one loop sequence the detector
    // fires and the pose-graph correction reduces end-of-run ATE
    // against the local-BA-only baseline (same config, loop closure
    // disabled). Measured at this exact configuration — see the table
    // printed below; margins are recorded in CHANGES/PERF.
    let mut fired = 0usize;
    let mut improved = 0usize;
    let mut table = String::new();
    for spec in &SequenceSpec::loop_sequences(LOOP_FRAMES, IMAGE_SCALE) {
        let ba_only = run(spec, BackendMode::Sync, false);
        let with_loop = run(spec, BackendMode::Sync, true);
        let base = ba_only.ate_rmse_cm(Stage::Closed).expect("ate");
        let closed = with_loop.ate_rmse_cm(Stage::Closed).expect("ate");
        let stats = with_loop.backend.expect("backend on");
        table.push_str(&format!(
            "  {:13} BA-only {base:7.3} -> loop {closed:7.3} cm \
             ({} closures, {} candidates, {} matches, {} inliers)\n",
            spec.name,
            stats.loops_closed,
            stats.loop_candidates,
            stats.last_loop_matches,
            stats.last_loop_inliers,
        ));
        if stats.loops_closed >= 1 {
            fired += 1;
            // The closure actually moved the trajectory: the BA-only
            // reference diverges from the corrected estimate.
            assert_ne!(
                with_loop.estimate.poses(),
                with_loop.ba_estimate.poses(),
                "{}: closure applied but estimate unchanged",
                spec.name
            );
            if closed < base {
                improved += 1;
            }
        }
    }
    eprintln!("loop-closure ATE (quarter scale, {LOOP_FRAMES} frames):\n{table}");
    assert!(
        fired >= 1,
        "the detector closed no loop on any loop sequence:\n{table}"
    );
    assert!(
        improved >= 1,
        "no loop sequence improved its ATE through closure:\n{table}"
    );
}

#[test]
fn corrected_trajectory_is_bit_identical_sync_vs_async() {
    if backend_forced_off() {
        eprintln!("ESLAM_BACKEND=off; skipping loop-closure assertions");
        return;
    }
    // The determinism oracle, extended to the loop path: detection,
    // verification (SIMD matching + RANSAC with its fixed seed),
    // pose-graph solve and drift propagation must be bit-identical
    // whether jobs run inline or on the worker pool. When
    // ESLAM_BACKEND pins one mode both runs resolve to it and the
    // comparison still must hold. The kernel × prefetch axes come from
    // the CI matrix environment.
    for spec in &SequenceSpec::loop_sequences(LOOP_FRAMES, IMAGE_SCALE) {
        let sync = run(spec, BackendMode::Sync, true);
        let async_ = run(spec, BackendMode::Async, true);
        assert_eq!(
            sync.estimate.poses(),
            async_.estimate.poses(),
            "{}: corrected trajectory diverged",
            spec.name
        );
        assert_eq!(
            sync.ba_estimate.poses(),
            async_.ba_estimate.poses(),
            "{}: BA reference diverged",
            spec.name
        );
        assert_eq!(
            sync.keyframes.poses(),
            async_.keyframes.poses(),
            "{}: keyframe trajectory diverged",
            spec.name
        );
        for (a, s) in async_.reports.iter().zip(&sync.reports) {
            assert_eq!(a.pose_c2w, s.pose_c2w, "{} frame {}", spec.name, s.index);
            assert_eq!(
                a.loop_closed, s.loop_closed,
                "{} frame {}",
                spec.name, s.index
            );
            assert_eq!(
                a.backend_applied, s.backend_applied,
                "{} frame {}",
                spec.name, s.index
            );
        }
        let (a, s) = (
            async_.backend.expect("async stats"),
            sync.backend.expect("sync stats"),
        );
        assert_eq!(a.loop_candidates, s.loop_candidates, "{}", spec.name);
        assert_eq!(a.loops_closed, s.loops_closed, "{}", spec.name);
        assert_eq!(a.loops_rejected, s.loops_rejected, "{}", spec.name);
        assert_eq!(a.last_loop_matches, s.last_loop_matches, "{}", spec.name);
        assert_eq!(a.last_loop_inliers, s.last_loop_inliers, "{}", spec.name);
        assert_eq!(a.culled_keyframes, s.culled_keyframes, "{}", spec.name);
        assert_eq!(
            a.pose_graph_iterations, s.pose_graph_iterations,
            "{}",
            spec.name
        );
    }
}

#[test]
fn loop_runs_are_identical_across_prefetch_modes() {
    if backend_forced_off() {
        eprintln!("ESLAM_BACKEND=off; skipping loop-closure assertions");
        return;
    }
    // The dataset-streaming axis must not leak into loop decisions
    // either: one loop sequence, prefetch forced on and off, same
    // corrected trajectory.
    let spec = &SequenceSpec::loop_sequences(LOOP_FRAMES, IMAGE_SCALE)[0];
    let seq = spec.build();
    let mut on = config();
    on.prefetch = PrefetchMode::On;
    let mut off = on;
    off.prefetch = PrefetchMode::Off;
    let a = run_sequence(&seq, on);
    let b = run_sequence(&seq, off);
    assert_eq!(a.estimate.poses(), b.estimate.poses());
    assert_eq!(a.ba_estimate.poses(), b.ba_estimate.poses());
    let (sa, sb) = (a.backend.unwrap(), b.backend.unwrap());
    assert_eq!(sa.loops_closed, sb.loops_closed);
    assert_eq!(sa.loop_candidates, sb.loop_candidates);
}

#[test]
fn finish_flushes_a_pending_loop_correction() {
    if backend_forced_off() {
        eprintln!("ESLAM_BACKEND=off; skipping loop-closure assertions");
        return;
    }
    // If the loop closes on the *last* frame, the verification job is
    // still in flight when the sequence ends; `Slam::finish` (via
    // run_sequence) must flush it so the exported trajectory carries
    // the correction. Driving frames manually and skipping finish
    // shows the difference.
    let spec = &SequenceSpec::loop_sequences(LOOP_FRAMES, IMAGE_SCALE)[0];
    let seq = spec.build();
    let mut cfg = config();
    cfg.backend.mode = BackendMode::Sync;
    let finished = run_sequence(&seq, cfg);
    let stats = finished.backend.expect("backend on");
    if stats.loops_closed == 0 {
        eprintln!("no closure on loop/circle at this configuration; flush test vacuous");
        return;
    }
    // Manual drive without finish: the correction dispatched at the
    // final keyframe must still be pending, not silently dropped.
    let mut slam = eslam_core::Slam::builder().config(cfg).build();
    for f in seq.frames() {
        slam.process(f.timestamp, &f.gray, &f.depth);
    }
    let before_flush = slam.trajectory().clone();
    slam.finish();
    let after_flush = slam.trajectory().clone();
    assert_eq!(
        after_flush.poses(),
        finished.estimate.poses(),
        "finish must produce the same trajectory run_sequence exports"
    );
    // The flush did real work unless every correction already landed
    // at a frame boundary (possible when the loop closes early); when
    // the last closure was pending, the trajectories differ.
    if stats.loops_closed >= 1 && before_flush.poses() != after_flush.poses() {
        eprintln!("finish flushed a pending loop correction (as designed)");
    }
}
