//! The keyframe-backend oracle (mirroring `prefetch_equivalence.rs`
//! for the mapping layer): the asynchronous local-mapping mode must be
//! **bit-identical** to the synchronous reference mode — per-frame
//! poses, keyframe decisions, map sizes, refined trajectories and
//! backend bookkeeping — across paper sequences, worker-pool shapes and
//! dataset-prefetch settings; and the windowed local BA must
//! demonstrably reduce trajectory error against the no-backend
//! baseline.
//!
//! The equivalence holds because the backend dispatches each solve on
//! an owned snapshot and applies the result only at the next frame
//! boundary — never "whenever the worker finished" — so thread timing
//! cannot leak into the state evolution. CI re-runs the whole test
//! suite under `ESLAM_BACKEND=sync` and `=async` (alongside the kernel
//! × prefetch matrix) to pin both modes explicitly.

use eslam_core::{run_sequence, BackendMode, PrefetchMode, Slam, SlamConfig, Stage};
use eslam_dataset::sequence::{SequenceSpec, SyntheticSequence};

const IMAGE_SCALE: f64 = 0.25;

fn config() -> SlamConfig {
    SlamConfig::scaled_for_tests(1.0 / IMAGE_SCALE)
}

/// Paper sequences sized so the backend actually engages (several
/// keyframes → several local-BA solves), while staying debug-fast.
fn backend_heavy_sequences() -> Vec<SyntheticSequence> {
    let all = SequenceSpec::paper_sequences(12, IMAGE_SCALE);
    let frames = [12, 10, 10, 8, 10]; // xyz, fr2/xyz, desk, room, rpy
    all.iter()
        .zip(frames)
        .map(|(spec, n)| {
            let mut spec = spec.clone();
            spec.params.frames = n;
            spec.build()
        })
        .collect()
}

/// Whether `ESLAM_BACKEND` pins the execution mode process-wide (the
/// CI matrix does this; config-driven off-vs-on comparisons are then
/// impossible and the affected assertions are skipped).
fn backend_mode_forced() -> bool {
    BackendMode::Off.resolved() != BackendMode::Off
        || BackendMode::Sync.resolved() != BackendMode::Sync
}

/// Whether `ESLAM_BACKEND=off` disables the backend entirely — the
/// equivalence assertions are then vacuous (no solves, no stats) and
/// skip themselves.
fn backend_forced_off() -> bool {
    BackendMode::Sync.resolved() == BackendMode::Off
}

#[test]
fn async_backend_bit_identical_to_sync_reference() {
    if backend_forced_off() {
        eprintln!("ESLAM_BACKEND=off; skipping backend equivalence assertions");
        return;
    }
    // The oracle: a manual Slam loop in Sync mode versus run_sequence
    // in Async mode, for every paper sequence. Everything the system
    // produces must agree exactly. (When ESLAM_BACKEND forces a mode,
    // both configs resolve to it and the comparison still must hold —
    // it just no longer spans two modes.)
    for seq in backend_heavy_sequences() {
        let mut sync_cfg = config();
        sync_cfg.backend.mode = BackendMode::Sync;
        let mut manual = Slam::builder().config(sync_cfg).build();
        let sync_reports: Vec<_> = seq
            .frames()
            .map(|f| manual.process(f.timestamp, &f.gray, &f.depth))
            .collect();
        manual.finish();

        let mut async_cfg = config();
        async_cfg.backend.mode = BackendMode::Async;
        let result = run_sequence(&seq, async_cfg);

        assert_eq!(result.reports.len(), sync_reports.len(), "{}", seq.name);
        for (a, s) in result.reports.iter().zip(&sync_reports) {
            let ctx = format!("{} frame {}", seq.name, s.index);
            assert_eq!(a.pose_c2w, s.pose_c2w, "{ctx}: pose");
            assert_eq!(a.is_keyframe, s.is_keyframe, "{ctx}: keyframe flag");
            assert_eq!(a.tracking_ok, s.tracking_ok, "{ctx}: tracking flag");
            assert_eq!(a.inliers, s.inliers, "{ctx}: inliers");
            assert_eq!(a.map_size, s.map_size, "{ctx}: map size");
            assert_eq!(a.backend_applied, s.backend_applied, "{ctx}: apply point");
            assert_eq!(a.extraction, s.extraction, "{ctx}: extraction counters");
        }
        // Refined and raw trajectories are identical pose streams.
        assert_eq!(
            result.estimate.poses(),
            manual.trajectory().poses(),
            "{}: refined trajectory",
            seq.name
        );
        assert_eq!(
            result.raw_estimate.poses(),
            manual.raw_trajectory().poses(),
            "{}: raw trajectory",
            seq.name
        );
        assert_eq!(
            result.keyframes.poses(),
            manual.keyframe_trajectory().poses(),
            "{}: keyframe trajectory",
            seq.name
        );
        // Backend bookkeeping agrees on everything but wall-clock.
        let (a, s) = (
            result.backend.expect("async backend stats"),
            *manual.backend_stats().expect("sync backend stats"),
        );
        assert_eq!(a.runs, s.runs, "{}: solves dispatched", seq.name);
        assert_eq!(a.applied, s.applied, "{}: solves applied", seq.name);
        assert_eq!(a.iterations, s.iterations, "{}: LM iterations", seq.name);
        assert_eq!(a.refined_keyframes, s.refined_keyframes, "{}", seq.name);
        assert_eq!(a.refined_landmarks, s.refined_landmarks, "{}", seq.name);
        assert_eq!(a.last_initial_cost, s.last_initial_cost, "{}", seq.name);
        assert_eq!(a.last_final_cost, s.last_final_cost, "{}", seq.name);
        // The backend actually did work on every sequence (otherwise
        // this test proves nothing).
        assert!(a.runs >= 1, "{}: no local BA dispatched", seq.name);
        assert!(a.applied >= 1, "{}: no refinement applied", seq.name);
    }
}

#[test]
fn backend_equivalence_holds_across_pool_shapes_and_prefetch() {
    if backend_forced_off() {
        eprintln!("ESLAM_BACKEND=off; skipping backend equivalence assertions");
        return;
    }
    // The BA-heaviest sequence (room promotes every frame) under every
    // combination of Slam worker-pool width and dataset-prefetch mode:
    // one reference, bit-identical everywhere. Note the BA solves
    // themselves run on the process-global pool (whose width tracks
    // the host), so the `worker_threads` axis here varies the
    // extraction/matcher pool the solves must *not* interact with;
    // narrow-pool submit/join coverage for BA jobs (1/2/4-thread
    // pools, help-drain at join) lives in the eslam-backend unit test
    // `async_runner_matches_sync_runner_bitwise`, which constructs the
    // pools explicitly.
    let seq = SequenceSpec::paper_sequences(8, IMAGE_SCALE)[3].build();
    let mut reference: Option<eslam_core::RunResult> = None;
    for worker_threads in [Some(1), None] {
        for prefetch in [PrefetchMode::Off, PrefetchMode::On] {
            let mut cfg = config();
            cfg.backend.mode = BackendMode::Async;
            cfg.worker_threads = worker_threads;
            cfg.prefetch = prefetch;
            let result = run_sequence(&seq, cfg);
            match &reference {
                None => reference = Some(result),
                Some(r) => {
                    let ctx = format!("threads {worker_threads:?} prefetch {prefetch:?}");
                    assert_eq!(
                        result.estimate.poses(),
                        r.estimate.poses(),
                        "{ctx}: estimate"
                    );
                    assert_eq!(
                        result.keyframes.poses(),
                        r.keyframes.poses(),
                        "{ctx}: keyframes"
                    );
                    let (a, b) = (result.backend.unwrap(), r.backend.unwrap());
                    assert_eq!(a.runs, b.runs, "{ctx}: runs");
                    assert_eq!(a.iterations, b.iterations, "{ctx}: iterations");
                    assert_eq!(a.last_final_cost, b.last_final_cost, "{ctx}: cost");
                }
            }
        }
    }
    let runs = reference.unwrap().backend.unwrap().runs;
    assert!(
        runs >= 5,
        "room should solve nearly every frame, got {runs}"
    );
}

#[test]
fn repeated_runs_are_bit_identical() {
    if backend_forced_off() {
        eprintln!("ESLAM_BACKEND=off; skipping backend equivalence assertions");
        return;
    }
    // Determinism of one fixed configuration (the async default): the
    // whole pipeline, backend included, must be a pure function of its
    // input.
    let seq = SequenceSpec::paper_sequences(8, IMAGE_SCALE)[2].build();
    let run = || run_sequence(&seq, config());
    let (a, b) = (run(), run());
    assert_eq!(a.estimate.poses(), b.estimate.poses());
    assert_eq!(a.raw_estimate.poses(), b.raw_estimate.poses());
    assert_eq!(a.keyframes.poses(), b.keyframes.poses());
    let (sa, sb) = (a.backend.unwrap(), b.backend.unwrap());
    assert_eq!(sa.runs, sb.runs);
    assert_eq!(sa.iterations, sb.iterations);
    assert_eq!(sa.last_initial_cost, sb.last_initial_cost);
    assert_eq!(sa.last_final_cost, sb.last_final_cost);
}

#[test]
fn local_ba_reduces_trajectory_error_on_paper_sequences() {
    // The acceptance oracle: windowed local BA improves ATE on at
    // least 3 of the 5 paper sequences versus the no-backend baseline
    // (24 frames, quarter scale — margins measured on the current
    // deterministic pipeline, recorded below). Requires config-driven
    // off-vs-on runs, so it is skipped when ESLAM_BACKEND pins the
    // mode process-wide (the plain CI job runs it unpinned).
    if backend_mode_forced() {
        eprintln!("ESLAM_BACKEND is forced; skipping off-vs-on ATE comparison");
        return;
    }
    // Measured ATE rmse (cm) off → on at this exact configuration:
    //   fr1/xyz   2.640 → 2.151  (−0.489)
    //   fr2/xyz   2.211 → 2.127  (−0.084)
    //   fr1/desk  0.665 → 0.670  (+0.005, margin noise at sub-mm)
    //   fr1/room  7.823 → 7.533  (−0.290)
    //   fr2/rpy   3.424 → 3.661  (+0.237, rotation-only: no parallax
    //                              for BA to exploit, margin noise)
    let mut improved = 0;
    let mut total_off = 0.0;
    let mut total_on = 0.0;
    let mut table = String::new();
    for spec in &SequenceSpec::paper_sequences(24, IMAGE_SCALE) {
        let seq = spec.build();
        let run = |mode: BackendMode| {
            let mut cfg = config();
            cfg.backend.mode = mode;
            run_sequence(&seq, cfg)
        };
        let off = run(BackendMode::Off)
            .ate_rmse_cm(Stage::Closed)
            .expect("ate");
        let on_run = run(BackendMode::Sync);
        let on = on_run.ate_rmse_cm(Stage::Closed).expect("ate");
        assert!(
            on_run.backend.map_or(0, |b| b.applied) >= 1 || spec.name.contains("rpy"),
            "{}: backend never engaged",
            spec.name
        );
        if on < off {
            improved += 1;
        }
        total_off += off;
        total_on += on;
        table.push_str(&format!("  {:10} {off:7.3} -> {on:7.3} cm\n", spec.name));
    }
    eprintln!("ATE off -> with local BA:\n{table}");
    assert!(
        improved >= 3,
        "local BA should improve ATE on >=3/5 sequences, improved {improved}/5:\n{table}"
    );
    assert!(
        total_on < total_off,
        "local BA should improve total ATE: {total_off:.3} -> {total_on:.3} cm\n{table}"
    );
}
