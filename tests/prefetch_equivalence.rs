//! The async-path oracle (mirroring
//! `crates/features/tests/fast_path_equivalence.rs` for the dataset
//! layer): everything the double-buffered prefetch pipeline produces
//! must be **bit-identical** to the synchronous pull-on-demand path —
//! frame pixels, estimated trajectories, and per-frame feature counts —
//! for every paper sequence, every `FrameSource` kind, and every pool
//! shape, no matter what `ESLAM_PREFETCH` is set to in the environment
//! (the paths are driven directly here, so the CI matrix exercises the
//! same assertions under both forced settings).

use eslam_core::{run_sequence, PrefetchMode, Slam, SlamConfig};
use eslam_dataset::noise::NoiseModel;
use eslam_dataset::prefetch::with_prefetch;
use eslam_dataset::sequence::{Frame, SequenceSpec, SyntheticSequence};
use eslam_dataset::source::{FrameSource, NoisySource};
use eslam_features::pool::WorkerPool;

const IMAGE_SCALE: f64 = 0.25;

fn paper_sequences(frames: usize) -> Vec<SyntheticSequence> {
    SequenceSpec::paper_sequences(frames, IMAGE_SCALE)
        .iter()
        .map(|spec| spec.build())
        .collect()
}

/// Collects every frame a prefetch stream yields, as owned clones.
fn collect_prefetched<S: FrameSource + Sync>(source: &S, pool: &WorkerPool) -> Vec<Frame> {
    with_prefetch(source, pool, |stream| {
        let mut out = Vec::with_capacity(stream.len());
        while let Some(frame) = stream.next_frame() {
            out.push(frame.clone());
        }
        out
    })
}

/// Asserts two frames are bit-identical, with a per-field message.
fn assert_frames_identical(a: &Frame, b: &Frame, context: &str) {
    assert_eq!(a.gray.as_raw(), b.gray.as_raw(), "{context}: gray pixels");
    assert_eq!(
        a.depth.as_raw(),
        b.depth.as_raw(),
        "{context}: depth pixels"
    );
    assert_eq!(a.timestamp, b.timestamp, "{context}: timestamp");
    assert_eq!(a.ground_truth, b.ground_truth, "{context}: ground truth");
}

#[test]
fn prefetched_pixels_bit_identical_for_all_paper_sequences() {
    // Pool shapes: 1 thread (render degenerates to inline at the join),
    // and wider than the host (forces queueing through real workers).
    for threads in [1, 4] {
        let pool = WorkerPool::new(threads);
        for seq in paper_sequences(3) {
            let streamed = collect_prefetched(&seq, &pool);
            assert_eq!(streamed.len(), seq.len(), "{}", seq.name);
            for (i, frame) in streamed.iter().enumerate() {
                let reference = seq.frame(i);
                assert_frames_identical(
                    frame,
                    &reference,
                    &format!("{} frame {i} (pool size {threads})", seq.name),
                );
            }
        }
    }
}

#[test]
fn prefetched_run_matches_synchronous_run_exactly() {
    // The full-pipeline oracle: a manual Slam loop over owned frames
    // (never prefetches, whatever ESLAM_PREFETCH says) versus
    // run_sequence with the prefetcher forced on via config, for every
    // paper sequence. Trajectories, tracking decisions and feature
    // counts must agree exactly.
    for seq in paper_sequences(4) {
        let mut manual = Slam::builder()
            .config(SlamConfig::scaled_for_tests(1.0 / IMAGE_SCALE))
            .build();
        let manual_reports: Vec<_> = seq
            .frames()
            .map(|f| manual.process(f.timestamp, &f.gray, &f.depth))
            .collect();
        // run_sequence finishes the keyframe backend (applying any
        // in-flight local-BA refinement to the trajectory); the manual
        // loop must do the same before trajectories can compare.
        manual.finish();

        for mode in [PrefetchMode::On, PrefetchMode::Off, PrefetchMode::Auto] {
            let mut config = SlamConfig::scaled_for_tests(1.0 / IMAGE_SCALE);
            config.prefetch = mode;
            let result = run_sequence(&seq, config);
            assert_eq!(
                result.reports.len(),
                manual_reports.len(),
                "{} {mode:?}",
                seq.name
            );
            for (r, m) in result.reports.iter().zip(&manual_reports) {
                let ctx = format!("{} frame {} ({mode:?})", seq.name, m.index);
                assert_eq!(r.pose_c2w, m.pose_c2w, "{ctx}: pose");
                assert_eq!(r.extraction, m.extraction, "{ctx}: feature counts");
                assert_eq!(r.raw_matches, m.raw_matches, "{ctx}: raw matches");
                assert_eq!(r.inliers, m.inliers, "{ctx}: inliers");
                assert_eq!(r.is_keyframe, m.is_keyframe, "{ctx}: keyframe flag");
                assert_eq!(r.tracking_ok, m.tracking_ok, "{ctx}: tracking flag");
                assert_eq!(r.map_size, m.map_size, "{ctx}: map size");
                assert_eq!(r.hw_timing, m.hw_timing, "{ctx}: modelled hw timing");
            }
            // Trajectories are identical pose streams.
            assert_eq!(
                result.estimate.poses(),
                manual.trajectory().poses(),
                "{} {mode:?}: trajectory",
                seq.name
            );
        }
    }
}

#[test]
fn concurrent_rendering_is_bit_identical_to_serial() {
    // Guards the ray-caster + noise model against hidden shared state
    // before trusting them on a background thread: N threads rendering
    // the same frames concurrently (same index contended, and disjoint
    // indices) must reproduce serial rendering exactly.
    let seq = &paper_sequences(4)[2]; // fr1/desk: quads + default noise
    let serial: Vec<Frame> = (0..seq.len()).map(|i| seq.frame(i)).collect();

    // Same frame from many threads at once.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8).map(|_| scope.spawn(|| seq.frame(1))).collect();
        for h in handles {
            assert_frames_identical(&h.join().unwrap(), &serial[1], "contended frame 1");
        }
    });

    // Disjoint frames in parallel, repeated to vary interleavings.
    for round in 0..4 {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..seq.len())
                .map(|i| scope.spawn(move || (i, seq.frame(i))))
                .collect();
            for h in handles {
                let (i, frame) = h.join().unwrap();
                assert_frames_identical(
                    &frame,
                    &serial[i],
                    &format!("parallel frame {i} round {round}"),
                );
            }
        });
    }
}

#[test]
fn disk_source_prefetches_bit_identically() {
    // The disk reader streams through the same adapter: export one
    // paper sequence, reload it, and prefetch it.
    let seq = &paper_sequences(3)[0];
    let root = std::env::temp_dir().join(format!("eslam_prefetch_eq_{}", std::process::id()));
    eslam_dataset::disk::export_sequence(seq, &root).expect("export");
    let disk = eslam_dataset::disk::DiskSequence::open(&root).expect("open");

    let pool = WorkerPool::new(2);
    let streamed = collect_prefetched(&disk, &pool);
    assert_eq!(streamed.len(), 3);
    for (i, frame) in streamed.iter().enumerate() {
        let reference = disk.frame(i).expect("disk frame");
        assert_frames_identical(frame, &reference, &format!("disk frame {i}"));
        // And the disk pixels are the synthetic pixels (PGM round-trip
        // is lossless), so the whole chain is anchored to the renderer.
        assert_eq!(frame.gray, seq.frame(i).gray, "disk vs synthetic {i}");
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn noise_augmented_source_prefetches_bit_identically() {
    let seq = paper_sequences(3).remove(4); // fr2/rpy
    let noisy = NoisySource::new(
        seq,
        NoiseModel {
            intensity_sigma: 3.0,
            depth_dropout: 0.05,
            ..NoiseModel::default()
        },
        "equivalence-aug",
    );
    let pool = WorkerPool::new(3);
    let streamed = collect_prefetched(&noisy, &pool);
    assert_eq!(streamed.len(), 3);
    for (i, frame) in streamed.iter().enumerate() {
        assert_frames_identical(frame, &noisy.source_frame(i), &format!("noisy frame {i}"));
    }
    // The augmentation actually perturbed something (otherwise this
    // test proves nothing about the wrapper).
    assert_ne!(streamed[0].gray, noisy.inner().frame(0).gray);
}

#[test]
fn prefetch_equivalence_holds_across_worker_thread_overrides() {
    // The Slam-owned extraction pool size must not interact with the
    // prefetch substrate: 1-thread and wide pools agree exactly.
    let seq = &paper_sequences(4)[0];
    let runs: Vec<_> = [Some(1), None]
        .into_iter()
        .map(|worker_threads| {
            let mut config = SlamConfig::scaled_for_tests(1.0 / IMAGE_SCALE);
            config.worker_threads = worker_threads;
            config.prefetch = PrefetchMode::On;
            run_sequence(seq, config)
        })
        .collect();
    for (r, m) in runs[0].reports.iter().zip(&runs[1].reports) {
        assert_eq!(r.pose_c2w, m.pose_c2w, "frame {}: pose", m.index);
        assert_eq!(r.extraction, m.extraction, "frame {}: counts", m.index);
    }
    assert_eq!(runs[0].estimate.poses(), runs[1].estimate.poses());
}
