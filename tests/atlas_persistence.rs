//! The atlas tier: persisted maps, cold-start relocalization and the
//! shared multi-session [`Atlas`].
//!
//! Three stories, in rising order of integration:
//!
//! 1. **format totality** — property tests drive randomly shaped maps
//!    through encode → decode (bit-identical round trips) and throw
//!    corrupted, truncated and adversarial bytes at the decoder, which
//!    must always return a typed [`AtlasError`] — never panic, never
//!    let a fabricated count size an allocation;
//! 2. **save → load → relocalize** — a `loop/circle` mapping run saves
//!    its atlas, a *fresh process-state* reload round-trips every
//!    section bit-identically, and a brand-new [`Session`] with no
//!    tracking history cold-starts against the loaded map to within
//!    2 cm of the ground-truth start pose;
//! 3. **shared serving** — at least 4 concurrent sessions localize
//!    against one [`Atlas`] while the writer keeps publishing: nobody
//!    blocks anybody, every session converges on the same pose.
//!
//! Like the loop tier, the mapping runs skip under `ESLAM_BACKEND=off`
//! (no keyframes → nothing to relocalize against); the format property
//! tests always run.

use std::sync::Arc;

use eslam_backend::keyframe::KeyframeObservation;
use eslam_backend::{BackendMode, CovisibilityGraph, KeyframeStore};
use eslam_core::persist::{decode_atlas, encode_atlas, AtlasContents, AtlasError};
use eslam_core::{Atlas, Map, MapPoint, PointObservation, Session, Slam, SlamConfig};
use eslam_dataset::sequence::SequenceSpec;
use eslam_features::bow::{BowParams, Vocabulary};
use eslam_features::Descriptor;
use eslam_geometry::{Se3, Vec2, Vec3};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const IMAGE_SCALE: f64 = 0.25;
const LOOP_FRAMES: usize = 48;

/// The tier's configuration: the paper defaults at quarter scale. The
/// *stock* map-cull age (unlike the loop tier's shortened one) keeps
/// the run's early landmarks — positions anchored at the gauge frame —
/// alive into the persisted map, which is exactly what a serving-grade
/// atlas wants: relocalization verifies against keyframe 0's
/// promotion-time geometry and the tracking refine then converges on
/// the same well-anchored landmarks.
fn config() -> SlamConfig {
    SlamConfig::scaled_for_tests(1.0 / IMAGE_SCALE)
}

/// Whether `ESLAM_BACKEND=off` forces the keyframe backend off (the
/// mapping-side assertions are then vacuous: no store, no vocabulary).
fn backend_forced_off() -> bool {
    BackendMode::Sync.resolved() == BackendMode::Off
}

// ------------------------------------------------------- random worlds

/// A randomly shaped — but internally consistent — atlas, driven by a
/// proptest-chosen seed and sizes.
fn random_contents(seed: u64, points: usize, keyframes: usize, with_vocab: bool) -> AtlasContents {
    let mut rng = SmallRng::seed_from_u64(seed);
    let desc =
        |rng: &mut SmallRng| Descriptor::from_words([rng.gen(), rng.gen(), rng.gen(), rng.gen()]);

    let mut map = Map::new();
    for _ in 0..points {
        let d = desc(&mut rng);
        let idx = map.len();
        map.insert(
            Vec3::new(
                rng.gen::<f64>() * 4.0 - 2.0,
                rng.gen(),
                1.0 + rng.gen::<f64>() * 4.0,
            ),
            d,
            rng.gen::<u64>() as usize % 64,
            0,
            Vec2::new(rng.gen::<f64>() * 640.0, rng.gen::<f64>() * 480.0),
        );
        if rng.gen::<f64>() < 0.3 {
            map.record_observation(idx, 1, Vec2::new(rng.gen::<f64>() * 640.0, 0.0));
        }
    }

    let mut store = KeyframeStore::new();
    let mut graph = CovisibilityGraph::new();
    for k in 0..keyframes {
        let n = 4 + rng.gen::<u64>() as usize % 24;
        let observations: Vec<KeyframeObservation> = (0..n)
            .map(|i| KeyframeObservation {
                landmark: rng.gen::<u64>() % 512,
                pixel: Vec2::new(i as f64 * 3.0, k as f64),
                position: Vec3::new(rng.gen(), rng.gen(), 1.0 + rng.gen::<f64>()),
            })
            .collect();
        let descriptors: Vec<Descriptor> = (0..n).map(|_| desc(&mut rng)).collect();
        let q = eslam_geometry::Quaternion {
            w: 1.0,
            x: rng.gen::<f64>() * 0.1,
            y: rng.gen::<f64>() * 0.1,
            z: rng.gen::<f64>() * 0.1,
        };
        let pose = Se3::from_quaternion_translation(&q, Vec3::new(rng.gen(), rng.gen(), rng.gen()));
        store.push(k * 2, k as f64 / 30.0, pose, observations, descriptors);
        graph.add_node();
        if k > 0 {
            graph.accumulate(k - 1, k, 1 + rng.gen::<u64>() as usize % 40);
        }
    }

    let vocabulary = if with_vocab {
        let corpus: Vec<Descriptor> = (0..96).map(|_| desc(&mut rng)).collect();
        Vocabulary::train(&corpus, &BowParams::default()).map(|mut v| {
            if seed.is_multiple_of(2) {
                v.train_idf(corpus.chunks(16));
            }
            v
        })
    } else {
        None
    };

    AtlasContents {
        map,
        keyframes: store,
        covisibility: graph,
        vocabulary,
    }
}

fn assert_identical(a: &AtlasContents, b: &AtlasContents) {
    assert_eq!(a.map, b.map);
    assert_eq!(a.keyframes, b.keyframes);
    assert_eq!(a.covisibility, b.covisibility);
    assert_eq!(a.vocabulary, b.vocabulary);
}

mod format_properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Any world round-trips bit-identically (poses serialize as
        /// raw rotation matrices precisely so this holds to the ulp).
        #[test]
        fn round_trip_is_bit_identical(
            seed in any::<u64>(),
            points in 0usize..40,
            keyframes in 0usize..8,
            with_vocab in any::<bool>(),
        ) {
            let contents = random_contents(seed, points, keyframes, with_vocab);
            let bytes = encode_atlas(&contents);
            let back = decode_atlas(&bytes).expect("own encoding decodes");
            assert_identical(&contents, &back);
        }

        /// Any single corrupted byte is caught — by the magic/version
        /// check, a section checksum, or a semantic validator — and
        /// reported as a typed error, never a panic.
        #[test]
        fn corrupt_bytes_yield_typed_errors(
            seed in any::<u64>(),
            position in any::<u64>(),
            flip in 0u8..255,
        ) {
            let contents = random_contents(seed, 6, 3, true);
            let mut bytes = encode_atlas(&contents);
            let at = (position % bytes.len() as u64) as usize;
            bytes[at] ^= flip.wrapping_add(1);
            prop_assert!(
                decode_atlas(&bytes).is_err(),
                "flip of byte {at} went unnoticed"
            );
        }

        /// Any truncation of a file whose sections are all required is
        /// an error; no prefix length panics or over-allocates.
        #[test]
        fn truncations_yield_typed_errors(
            seed in any::<u64>(),
            cut in any::<u64>(),
        ) {
            let contents = random_contents(seed, 6, 3, false);
            let bytes = encode_atlas(&contents);
            let len = (cut % bytes.len() as u64) as usize;
            prop_assert!(decode_atlas(&bytes[..len]).is_err());
        }

        /// Arbitrary bytes never panic the decoder.
        #[test]
        fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = decode_atlas(&bytes);
        }
    }
}

#[test]
fn wrong_version_and_foreign_files_are_rejected() {
    let contents = random_contents(7, 4, 2, false);
    let mut bytes = encode_atlas(&contents);
    bytes[8] = 0xfe; // version word
    match decode_atlas(&bytes) {
        Err(AtlasError::UnsupportedVersion(v)) => assert_eq!(v, 0xfe),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    assert!(matches!(
        decode_atlas(b"not an atlas file at all"),
        Err(AtlasError::BadMagic)
    ));
    // A fabricated huge count in a tiny file must be rejected before
    // any allocation is sized by it (anti-OOM).
    let mut tiny = encode_atlas(&AtlasContents {
        map: Map::new(),
        keyframes: KeyframeStore::new(),
        covisibility: CovisibilityGraph::new(),
        vocabulary: None,
    });
    // Overwrite the MAP section's count (magic 8 + version 4 + tag 4 +
    // len 8 = offset 24) with u64::MAX.
    tiny[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(decode_atlas(&tiny).is_err());
}

#[test]
fn semantic_validators_back_the_decoder() {
    // The decoder rebuilds each section through the same validating
    // constructors the system uses (`Map::from_points`,
    // `KeyframeStore::from_keyframes`, `CovisibilityGraph::from_edges`,
    // `Vocabulary::from_parts`), so structurally well-formed bytes
    // that violate semantic invariants land in `AtlasError::Corrupt`
    // rather than in a poisoned structure. Spot-check the constructor
    // the MAP section delegates to: duplicate stable ids are refused.
    let point = MapPoint {
        id: 5,
        position: Vec3::ZERO,
        descriptor: Descriptor::from_words([1, 2, 3, 4]),
        created_frame: 0,
        last_matched_frame: 0,
        observations: vec![PointObservation {
            keyframe: 0,
            pixel: Vec2::new(1.0, 2.0),
        }],
    };
    assert!(Map::from_points(vec![point.clone(), point]).is_err());
}

// ------------------------------------------- save → load → relocalize

#[test]
fn circle_map_reloads_bit_identically_and_relocalizes_a_cold_session() {
    if backend_forced_off() {
        eprintln!("ESLAM_BACKEND=off; skipping atlas mapping assertions");
        return;
    }
    let spec = &SequenceSpec::loop_sequences(LOOP_FRAMES, IMAGE_SCALE)[0];
    assert_eq!(spec.name, "loop/circle");
    let seq = spec.build();

    // Mapping run: a Slam with an attached atlas publishes on finish.
    let atlas = Arc::new(Atlas::empty());
    let mut cfg = config();
    cfg.backend.mode = BackendMode::Sync;
    let mut slam = Slam::builder()
        .config(cfg)
        .atlas(Arc::clone(&atlas))
        .build();
    for frame in seq.frames() {
        slam.process(frame.timestamp, &frame.gray, &frame.depth);
    }
    slam.finish();
    assert_eq!(atlas.epoch(), 1, "finish() publishes exactly once");
    let published = atlas.snapshot();
    assert!(
        published.keyframes().len() >= 3,
        "circle promotes keyframes"
    );
    assert!(
        published.can_relocalize(),
        "offline vocabulary training must succeed on the circle corpus"
    );
    assert!(
        published.vocabulary().and_then(|v| v.idf()).is_some(),
        "atlas vocabularies carry tf-idf weights"
    );

    // Save → load: every section bit-identical.
    let dir = std::env::temp_dir().join(format!("eslam_atlas_tier_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("circle.atlas");
    atlas.save(&path).expect("save");
    let loaded = Atlas::load(&path).expect("load");
    let reloaded = loaded.snapshot();
    assert_eq!(published.map(), reloaded.map());
    assert_eq!(published.keyframes(), reloaded.keyframes());
    assert_eq!(published.covisibility(), reloaded.covisibility());
    assert_eq!(published.vocabulary(), reloaded.vocabulary());
    std::fs::remove_file(&path).ok();
    std::fs::remove_dir(&dir).ok();

    // Cold start: a fresh session (no tracking history, no motion
    // prior) localizes the sequence's first frame. The mapping run's
    // world frame *is* the first camera frame, so ground truth for the
    // query pose is the identity — within 2 cm.
    let loaded = Arc::new(loaded);
    let mut session = Session::new(Arc::clone(&loaded), config());
    assert!(!session.is_tracking());
    let frame = seq.frames().next().expect("sequence has frames");
    let localization = session
        .localize(&frame.gray)
        .expect("cold-start relocalization succeeds on a mapped view");
    assert!(localization.cold_start, "first frame has no warm pose");
    let err = localization.pose_c2w().translation.norm();
    assert!(
        err < 0.02,
        "cold-start pose {err:.4} m from ground-truth start (budget 2 cm)"
    );
    assert!(session.is_tracking(), "the session is warm afterwards");

    // The now-warm session tracks the next frame without relocalizing.
    let mut frames = seq.frames();
    frames.next();
    let second = frames.next().expect("two frames");
    let warm = session
        .localize(&second.gray)
        .expect("warm tracking continues");
    assert!(!warm.cold_start, "second frame tracks warm");
}

// ---------------------------------------------------- shared serving

#[test]
fn concurrent_sessions_share_one_atlas_without_starving_the_writer() {
    if backend_forced_off() {
        eprintln!("ESLAM_BACKEND=off; skipping atlas mapping assertions");
        return;
    }
    let spec = &SequenceSpec::loop_sequences(LOOP_FRAMES, IMAGE_SCALE)[0];
    let seq = spec.build();

    let atlas = Arc::new(Atlas::empty());
    let mut cfg = config();
    cfg.backend.mode = BackendMode::Sync;
    let mut slam = Slam::builder()
        .config(cfg)
        .atlas(Arc::clone(&atlas))
        .build();
    for frame in seq.frames() {
        slam.process(frame.timestamp, &frame.gray, &frame.depth);
    }
    slam.finish();
    let reference = atlas.snapshot();
    assert!(reference.can_relocalize());

    // 4 sessions cold-start concurrently against the shared atlas; the
    // writer keeps republishing the same world while they work. Every
    // session must converge on the ground-truth start pose, and the
    // writer must get all its publishes through (no reader starvation
    // by construction: readers hold the lock only for an Arc clone).
    let sessions = 4;
    let frame = seq.frames().next().expect("frames");
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|_| {
                let atlas = Arc::clone(&atlas);
                let gray = frame.gray.clone();
                scope.spawn(move || {
                    let mut session = Session::new(atlas, config());
                    let localization = session.localize(&gray)?;
                    Some(localization.pose_c2w().translation.norm())
                })
            })
            .collect();
        // The single writer republishes while the readers localize.
        for _ in 0..8 {
            let state = eslam_core::AtlasState::from_contents(eslam_core::AtlasContents {
                map: reference.map().clone(),
                keyframes: reference.keyframes().clone(),
                covisibility: reference.covisibility().clone(),
                vocabulary: reference.vocabulary().cloned(),
            });
            atlas.publish(state);
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(atlas.epoch(), 1 + 8, "all writer publishes landed");
    for (i, err) in results.into_iter().enumerate() {
        let err = err.unwrap_or_else(|| panic!("session {i} failed to localize"));
        assert!(err < 0.02, "session {i} pose error {err:.4} m");
    }
}
