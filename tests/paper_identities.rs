//! Arithmetic identities mined from the paper, used as integration-level
//! oracles: Table 2's stage times must compose into Table 3's runtimes,
//! frame rates, and energies, and the resource/power models must match
//! Table 1 and the §4.3/§4.4 claims.

use eslam_hw::power::{energy_per_frame_mj, eslam_power_w, ARM_POWER_W, I7_POWER_W};
use eslam_hw::resource::{eslam_total, DEFAULT_MATCHER_PARALLELISM, XCZ7045};
use eslam_hw::system::{eslam_stage_times, platform_reports, PriorExtractorModel};
use eslam_image::pyramid::PyramidConfig;

#[test]
fn table2_stage_times_reproduce() {
    let [arm, i7, eslam] = platform_reports();
    // eSLAM column.
    assert!(
        (eslam.stages.fe - 9.1).abs() < 0.1,
        "eSLAM FE {}",
        eslam.stages.fe
    );
    assert!(
        (eslam.stages.fm - 4.0).abs() < 0.05,
        "eSLAM FM {}",
        eslam.stages.fm
    );
    assert_eq!(eslam.stages.pe, 9.2);
    assert_eq!(eslam.stages.po, 8.7);
    assert_eq!(eslam.stages.mu, 9.9);
    // ARM column.
    assert!(
        (arm.stages.fe - 291.6).abs() < 3.0,
        "ARM FE {}",
        arm.stages.fe
    );
    assert!(
        (arm.stages.fm - 246.2).abs() < 2.5,
        "ARM FM {}",
        arm.stages.fm
    );
    // i7 column.
    assert!((i7.stages.fe - 32.5).abs() < 0.4, "i7 FE {}", i7.stages.fe);
    assert!((i7.stages.fm - 19.7).abs() < 0.3, "i7 FM {}", i7.stages.fm);
    assert_eq!(i7.stages.pe, 0.9);
    assert_eq!(i7.stages.po, 0.5);
    assert_eq!(i7.stages.mu, 1.2);
}

#[test]
fn table2_composes_into_table3() {
    // §4.3's stated identities.
    let [arm, i7, eslam] = platform_reports();
    // eSLAM N-frame = PE + PO; K-frame = FM + PE + PO + MU.
    let s = eslam.stages;
    assert!((eslam.frames.normal_ms - (s.pe + s.po)).abs() < 1e-9);
    assert!((eslam.frames.keyframe_ms - (s.fm + s.pe + s.po + s.mu)).abs() < 1e-9);
    // CPU rows are plain sums.
    let a = arm.stages;
    assert!((arm.frames.normal_ms - (a.fe + a.fm + a.pe + a.po)).abs() < 1e-9);
    assert!((arm.frames.keyframe_ms - (a.fe + a.fm + a.pe + a.po + a.mu)).abs() < 1e-9);
    let i = i7.stages;
    assert!((i7.frames.normal_ms - (i.fe + i.fm + i.pe + i.po)).abs() < 1e-9);
}

#[test]
fn table3_energy_is_runtime_times_power() {
    let [arm, i7, eslam] = platform_reports();
    for report in [&arm, &i7, &eslam] {
        let expect_n = energy_per_frame_mj(report.frames.normal_ms, report.power_w);
        assert!((report.energy_normal_mj - expect_n).abs() < 1e-9);
        let expect_k = energy_per_frame_mj(report.frames.keyframe_ms, report.power_w);
        assert!((report.energy_keyframe_mj - expect_k).abs() < 1e-9);
    }
    // Paper's power row.
    assert_eq!(arm.power_w, ARM_POWER_W);
    assert_eq!(i7.power_w, I7_POWER_W);
    assert!((eslam.power_w - eslam_power_w()).abs() < 1e-12);
    assert!((eslam.power_w - 1.936).abs() < 1e-9);
}

#[test]
fn abstract_headline_numbers() {
    // "up to 3× and 31× frame rate improvement, as well as up to 71× and
    // 25× energy efficiency improvement" vs i7 and ARM.
    let [arm, i7, eslam] = platform_reports();
    assert!((eslam.frames.normal_fps / i7.frames.normal_fps - 3.0).abs() < 0.2);
    assert!((eslam.frames.normal_fps / arm.frames.normal_fps - 31.0).abs() < 1.5);
    assert!((i7.energy_normal_mj / eslam.energy_normal_mj - 71.0).abs() < 4.0);
    assert!((arm.energy_normal_mj / eslam.energy_normal_mj - 25.0).abs() < 1.5);
    // Speedup brackets of §4.3: 17.8× (key) to 31× (normal) vs ARM,
    // 1.7× to 3× vs i7.
    assert!((arm.frames.keyframe_ms / eslam.frames.keyframe_ms - 17.8).abs() < 0.6);
    assert!((i7.frames.keyframe_ms / eslam.frames.keyframe_ms - 1.7).abs() < 0.15);
}

#[test]
fn table1_resources_and_utilization() {
    let total = eslam_total(DEFAULT_MATCHER_PARALLELISM);
    assert_eq!(
        (total.lut, total.ff, total.dsp, total.bram),
        (56_954, 67_809, 111, 78)
    );
    let util = XCZ7045.utilization(total);
    let expect = [26.0, 15.5, 12.3, 14.3];
    for (got, want) in util.percent.iter().zip(expect) {
        assert!((got - want).abs() < 0.1, "{got} vs {want}");
    }
}

#[test]
fn discussion_pixel_and_latency_claims() {
    // §4.4: 4-level pyramid processes 48% more pixels than [4]'s 2-level;
    // eSLAM FE latency is ≈39% lower nonetheless.
    let four = PyramidConfig {
        levels: 4,
        scale_factor: 1.2,
    }
    .total_pixels(640, 480) as f64;
    let two = PyramidConfig {
        levels: 2,
        scale_factor: 1.2,
    }
    .total_pixels(640, 480) as f64;
    assert!((four / two - 1.48).abs() < 0.02);

    let ours = eslam_stage_times().fe;
    let prior = PriorExtractorModel::default().latency_ms(1024);
    assert!(((1.0 - ours / prior) - 0.39).abs() < 0.03);
}

#[test]
fn fabric_power_increase_claim() {
    // §4.3: "power consumption of eSLAM is increased by about 23%".
    let increase = (eslam_power_w() - ARM_POWER_W) / ARM_POWER_W;
    assert!((increase - 0.23).abs() < 0.01);
}

#[test]
fn energy_reduction_brackets() {
    // §4.3: energy per frame reduced 14×-25× vs ARM, 41×-71× vs i7
    // (normal frames give the upper bound, key frames the lower).
    let [arm, i7, eslam] = platform_reports();
    let vs_arm_normal = arm.energy_normal_mj / eslam.energy_normal_mj;
    let vs_arm_key = arm.energy_keyframe_mj / eslam.energy_keyframe_mj;
    assert!(vs_arm_key > 13.5 && vs_arm_key < 16.0, "key {vs_arm_key}");
    assert!(
        vs_arm_normal > 23.5 && vs_arm_normal < 26.5,
        "normal {vs_arm_normal}"
    );
    let vs_i7_normal = i7.energy_normal_mj / eslam.energy_normal_mj;
    let vs_i7_key = i7.energy_keyframe_mj / eslam.energy_keyframe_mj;
    assert!(vs_i7_key > 39.0 && vs_i7_key < 44.0, "key {vs_i7_key}");
    assert!(
        vs_i7_normal > 67.0 && vs_i7_normal < 75.0,
        "normal {vs_i7_normal}"
    );
}
