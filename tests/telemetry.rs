//! The telemetry tier: observability must **observe only**.
//!
//! * Trajectories and per-frame reports are bit-identical under every
//!   `ESLAM_TELEMETRY` mode (`off`/`counters`/`full`) crossed with both
//!   backend execution modes — the sink records, it never steers.
//! * In full mode [`RunResult::telemetry`] exposes per-stage
//!   percentiles for the pipeline's key stages (extraction, matching,
//!   pose optimization, backend solve, frame wait) with sane ordering
//!   (p50 ≤ p95 ≤ p99 ≤ max).
//! * The Chrome `trace_event` export from `loop/circle` is structurally
//!   sound JSON that Perfetto can load: named nested spans, per-frame
//!   markers, thread metadata.
//! * The Prometheus exposition carries cumulative histogram buckets,
//!   quantile gauges and the `_total` counters.
//! * Frames that blow `frame_budget_ms` are pinned in the flight
//!   recorder and dumped with their per-stage breakdown.
//!
//! The CI kernel matrix re-runs the suite with `ESLAM_TELEMETRY`
//! forced; config-driven mode comparisons detect the pin (via
//! [`eslam_core::config::resolved_telemetry`]) and skip the assertions
//! that would contradict it, exactly like the backend tier.

use eslam_core::config::resolved_telemetry;
use eslam_core::telemetry::Stage as TStage;
use eslam_core::{
    run_sequence, BackendMode, RunResult, Slam, SlamConfig, TelemetryConfig, TelemetryMode,
};
use eslam_dataset::sequence::{SequenceSpec, SyntheticSequence};

const IMAGE_SCALE: f64 = 0.25;
const MODES: [TelemetryMode; 3] = [
    TelemetryMode::Off,
    TelemetryMode::Counters,
    TelemetryMode::Full,
];

fn config(mode: TelemetryMode) -> SlamConfig {
    let mut cfg = SlamConfig::scaled_for_tests(1.0 / IMAGE_SCALE);
    cfg.telemetry = cfg.telemetry.with_mode(mode);
    cfg
}

/// The `ESLAM_TELEMETRY` pin, when the environment forces one
/// (config-driven mode comparisons are then partially vacuous).
fn forced_mode() -> Option<TelemetryMode> {
    for mode in MODES {
        let resolved = resolved_telemetry(TelemetryConfig::default().with_mode(mode)).mode;
        if resolved != mode {
            return Some(resolved);
        }
    }
    None
}

/// Paper sequences long enough that keyframes promote and the backend
/// solves, while staying debug-fast.
fn sequences() -> Vec<SyntheticSequence> {
    let all = SequenceSpec::paper_sequences(12, IMAGE_SCALE);
    let frames = [12, 10];
    all.iter()
        .zip(frames)
        .map(|(spec, n)| {
            let mut spec = spec.clone();
            spec.params.frames = n;
            spec.build()
        })
        .collect()
}

fn assert_identical(a: &RunResult, b: &RunResult, ctx: &str) {
    assert_eq!(a.reports.len(), b.reports.len(), "{ctx}: frame count");
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        let fctx = format!("{ctx} frame {}", ra.index);
        assert_eq!(ra.pose_c2w, rb.pose_c2w, "{fctx}: pose");
        assert_eq!(ra.is_keyframe, rb.is_keyframe, "{fctx}: keyframe flag");
        assert_eq!(ra.tracking_ok, rb.tracking_ok, "{fctx}: tracking flag");
        assert_eq!(ra.inliers, rb.inliers, "{fctx}: inliers");
        assert_eq!(ra.map_size, rb.map_size, "{fctx}: map size");
    }
    assert_eq!(
        a.estimate.poses(),
        b.estimate.poses(),
        "{ctx}: refined trajectory"
    );
    assert_eq!(
        a.raw_estimate.poses(),
        b.raw_estimate.poses(),
        "{ctx}: raw trajectory"
    );
}

#[test]
fn trajectories_bit_identical_across_telemetry_modes_and_backends() {
    // The heart of the tier: every telemetry mode crossed with both
    // backend execution modes produces the same system evolution as
    // the off/sync reference. (When ESLAM_TELEMETRY or ESLAM_BACKEND
    // pins an axis, the runs collapse onto the pinned value and the
    // comparison still must hold — it just spans fewer combinations.)
    for seq in sequences() {
        let mut ref_cfg = config(TelemetryMode::Off);
        ref_cfg.backend.mode = BackendMode::Sync;
        let reference = run_sequence(&seq, ref_cfg);
        for mode in MODES {
            for backend in [BackendMode::Sync, BackendMode::Async] {
                let mut cfg = config(mode);
                cfg.backend.mode = backend;
                let result = run_sequence(&seq, cfg);
                let ctx = format!("{} telemetry={mode} backend={backend:?}", seq.name);
                assert_identical(&result, &reference, &ctx);
            }
        }
    }
}

#[test]
fn run_result_exposes_percentiles_for_key_stages() {
    if let Some(mode) = forced_mode() {
        if mode != TelemetryMode::Full {
            eprintln!("ESLAM_TELEMETRY={mode}; skipping full-mode summary assertions");
            return;
        }
    }
    let seq = &sequences()[0];
    let result = run_sequence(seq, config(TelemetryMode::Full));
    let summary = result
        .telemetry
        .as_ref()
        .expect("full mode must attach a summary to RunResult");
    assert_eq!(summary.mode, TelemetryMode::Full);
    for stage in [
        TStage::Extraction,
        TStage::Matching,
        TStage::PoseOptimize,
        TStage::BackendSolve,
        TStage::FrameWait,
    ] {
        let s = summary
            .stage(stage)
            .unwrap_or_else(|| panic!("{} must be recorded", stage.name()));
        assert!(s.count > 0, "{}: empty histogram", stage.name());
        assert!(
            s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms && s.p99_ms <= s.max_ms,
            "{}: percentiles out of order (p50 {} p95 {} p99 {} max {})",
            stage.name(),
            s.p50_ms,
            s.p95_ms,
            s.p99_ms,
            s.max_ms
        );
        assert!(s.max_ms > 0.0, "{}: zero max", stage.name());
    }
    // The JSON rendering carries the same stages.
    let json = summary.to_json();
    for key in [
        "\"matching\"",
        "\"extraction\"",
        "\"p95_ms\"",
        "\"counters\"",
    ] {
        assert!(json.contains(key), "summary JSON missing {key}: {json}");
    }

    // Counters moved: frames were processed and matches were recorded.
    use eslam_core::telemetry::Counter;
    assert_eq!(
        summary.counter(Counter::FramesProcessed),
        result.reports.len() as u64
    );
    assert!(summary.counter(Counter::MatchInliers) > 0);

    // Off mode attaches nothing (cannot assert under a forced env pin,
    // but forced_mode() returned None or Full above — Full pins still
    // make this run full, so only check when truly unpinned).
    if forced_mode().is_none() {
        let off = run_sequence(seq, config(TelemetryMode::Off));
        assert!(off.telemetry.is_none(), "off mode must attach no summary");
        let counters = run_sequence(seq, config(TelemetryMode::Counters));
        let cs = counters
            .telemetry
            .expect("counters mode attaches a summary");
        assert!(cs.stages.is_empty(), "counters mode records no histograms");
        assert!(cs.counter(Counter::FramesProcessed) > 0);
    }
}

#[test]
fn chrome_trace_from_loop_circle_is_well_formed() {
    if let Some(mode) = forced_mode() {
        if mode != TelemetryMode::Full {
            eprintln!("ESLAM_TELEMETRY={mode}; skipping chrome-trace assertions");
            return;
        }
    }
    // The loop/circle sequence with the loop-closure tier's config, so
    // the trace contains the full span vocabulary: extraction levels,
    // matching, backend solves, loop detection.
    let spec = &SequenceSpec::loop_sequences(24, IMAGE_SCALE)[0];
    assert_eq!(spec.name, "loop/circle");
    let seq = spec.build();
    let mut cfg = config(TelemetryMode::Full);
    cfg.map_cull_age = 12;
    let mut slam = Slam::builder().config(cfg).build();
    for f in seq.frames() {
        slam.process(f.timestamp, &f.gray, &f.depth);
    }
    slam.finish();
    let telemetry = slam.telemetry().expect("full mode builds a sink");
    let trace = telemetry.chrome_trace();

    // Structural soundness (Perfetto loads strict JSON): balanced
    // braces/brackets and the trace_event vocabulary.
    let balanced = |open: char, close: char| {
        let o = trace.matches(open).count();
        let c = trace.matches(close).count();
        assert_eq!(o, c, "unbalanced {open}{close} in trace");
    };
    balanced('{', '}');
    balanced('[', ']');
    assert!(trace.starts_with('{') && trace.trim_end().ends_with('}'));
    for key in [
        "\"traceEvents\"",
        "\"displayTimeUnit\":\"ms\"",
        "\"ph\":\"X\"",
        "\"ph\":\"M\"",
        "\"process_name\"",
        "\"thread_name\"",
    ] {
        assert!(trace.contains(key), "trace missing {key}");
    }
    // Nested spans: a frame span plus the stages inside it.
    for name in [
        "\"name\":\"frame\"",
        "\"name\":\"matching\"",
        "\"name\":\"pyramid_build\"",
    ] {
        assert!(trace.contains(name), "trace missing {name}");
    }
    assert!(
        trace.contains("\"args\":{\"frame\":"),
        "frame markers missing"
    );
    assert_eq!(telemetry.trace_events_dropped(), 0, "trace ring overflowed");
}

#[test]
fn prometheus_export_serves_histograms_and_counters() {
    if let Some(mode) = forced_mode() {
        if mode != TelemetryMode::Full {
            eprintln!("ESLAM_TELEMETRY={mode}; skipping prometheus assertions");
            return;
        }
    }
    let seq = &sequences()[0];
    let mut slam = Slam::builder().config(config(TelemetryMode::Full)).build();
    for f in seq.frames() {
        slam.process(f.timestamp, &f.gray, &f.depth);
    }
    slam.finish();
    let text = slam.telemetry().expect("sink").prometheus();
    for needle in [
        "# TYPE eslam_stage_duration_seconds histogram",
        "eslam_stage_duration_seconds_bucket{stage=\"matching\"",
        "le=\"+Inf\"",
        "eslam_stage_duration_seconds_count{stage=\"matching\"}",
        "eslam_stage_quantile_seconds{stage=\"matching\",quantile=\"0.95\"}",
        "# TYPE eslam_frames_processed_total counter",
        "eslam_frames_processed_total",
    ] {
        assert!(
            text.contains(needle),
            "prometheus export missing {needle}:\n{text}"
        );
    }
}

#[test]
fn over_budget_frames_are_pinned_in_the_flight_recorder() {
    if let Some(mode) = forced_mode() {
        if mode != TelemetryMode::Full {
            eprintln!("ESLAM_TELEMETRY={mode}; skipping flight-recorder assertions");
            return;
        }
    }
    let seq = &sequences()[0];
    let mut cfg = config(TelemetryMode::Full);
    // Every real frame busts a 1µs budget.
    cfg.telemetry.frame_budget_ms = 0.001;
    let mut slam = Slam::builder().config(cfg).build();
    for f in seq.frames() {
        slam.process(f.timestamp, &f.gray, &f.depth);
    }
    let telemetry = slam.telemetry().expect("sink");
    let timelines = telemetry.timelines();
    assert!(!timelines.is_empty(), "flight recorder is empty");
    assert!(timelines.iter().all(|t| t.over_budget));
    let pinned = telemetry
        .last_over_budget()
        .expect("over-budget frame must be pinned");
    assert!(pinned.total_ms > cfg.telemetry.frame_budget_ms);
    let dump = telemetry.flight_dump();
    assert!(
        dump.contains("OVER BUDGET"),
        "dump missing the flag:\n{dump}"
    );
    assert!(
        dump.contains("matching"),
        "dump missing stage breakdown:\n{dump}"
    );
    // The over-budget warnings landed in the event ring.
    let events = eslam_core::telemetry::events::snapshot();
    assert!(
        events
            .iter()
            .any(|e| e.message.contains("frame budget blown")),
        "no over-budget event recorded"
    );
}
