//! Hardware/software contract tests: the `eslam-hw` simulator must be
//! bit-exact against the `eslam-features` reference on real rendered
//! frames — the property that makes the accuracy results of Fig. 8/9
//! transfer to the accelerated system.

use eslam_dataset::sequence::SequenceSpec;
use eslam_features::brief::RsBrief;
use eslam_features::matcher::match_brute_force;
use eslam_features::orb::{OrbConfig, OrbExtractor};
use eslam_features::Descriptor;
use eslam_hw::extractor::ExtractorModel;
use eslam_hw::matcher::MatcherModel;
use eslam_hw::units::rotator_behaviour;
use eslam_hw::{simulate_extraction, simulate_matching};

fn rendered_frame(seq_idx: usize, frame_idx: usize) -> eslam_dataset::Frame {
    let spec = &SequenceSpec::paper_sequences(frame_idx + 1, 0.25)[seq_idx];
    spec.build().frame(frame_idx)
}

#[test]
fn extractor_simulation_is_bit_exact_on_rendered_frames() {
    for seq in [0, 2, 4] {
        let frame = rendered_frame(seq, 0);
        let sim = simulate_extraction(&frame.gray, &ExtractorModel::default());
        let reference = OrbExtractor::new(OrbConfig::default()).extract(&frame.gray);
        assert_eq!(
            sim.features, reference,
            "sequence {seq}: simulator and reference disagree"
        );
        assert!(sim.timing.total.0 > 0);
    }
}

#[test]
fn matcher_simulation_is_bit_exact_on_extracted_descriptors() {
    let a = rendered_frame(2, 0);
    let b = rendered_frame(2, 1);
    let extractor = OrbExtractor::new(OrbConfig::default());
    let fa = extractor.extract(&a.gray);
    let fb = extractor.extract(&b.gray);
    assert!(!fa.is_empty() && !fb.is_empty());

    let sim = simulate_matching(&fa.descriptors, &fb.descriptors, &MatcherModel::default());
    let reference = match_brute_force(&fa.descriptors, &fb.descriptors, u32::MAX);
    assert_eq!(sim.matches, reference);
}

#[test]
fn brief_rotator_unit_matches_software_steering_on_real_patches() {
    // The hardware BRIEF Rotator (shift by 8×n bits) must equal software
    // steering for descriptors computed on real image content.
    let frame = rendered_frame(3, 0);
    let smoothed = eslam_image::filter::gaussian_blur_7x7_fixed(&frame.gray);
    let engine = RsBrief::new(OrbConfig::default().pattern_seed);
    for (x, y) in [(40u32, 40u32), (80, 60), (100, 90), (60, 30)] {
        let unsteered =
            eslam_features::brief::compute_descriptor(&smoothed, x, y, engine.pattern());
        for label in 0..32u8 {
            let hw: Descriptor = rotator_behaviour(unsteered, label);
            let sw = engine.compute(&smoothed, x, y, label);
            assert_eq!(hw, sw, "({x},{y}) label {label}");
        }
    }
}

#[test]
fn simulated_timing_tracks_workload_monotonically() {
    // Larger frames must never be modelled as faster.
    let small = rendered_frame(0, 0); // 160×120
    let spec_large = &SequenceSpec::paper_sequences(1, 0.5)[0]; // 320×240
    let large = spec_large.build().frame(0);
    let model = ExtractorModel::default();
    let t_small = simulate_extraction(&small.gray, &model).timing.total;
    let t_large = simulate_extraction(&large.gray, &model).timing.total;
    assert!(t_large > t_small);
}

#[test]
fn hamming_distances_of_matches_are_true_minima() {
    let a = rendered_frame(1, 0);
    let b = rendered_frame(1, 1);
    let extractor = OrbExtractor::new(OrbConfig::default());
    let fa = extractor.extract(&a.gray);
    let fb = extractor.extract(&b.gray);
    let sim = simulate_matching(&fa.descriptors, &fb.descriptors, &MatcherModel::default());
    for m in sim.matches.iter().take(50) {
        let naive = fb
            .descriptors
            .iter()
            .map(|t| fa.descriptors[m.query].hamming(t))
            .min()
            .unwrap();
        assert_eq!(m.distance, naive);
    }
}
