//! The streaming front-end oracle: everything the fused single-pass
//! streaming extractor produces must be **bit-identical** to the legacy
//! multi-pass pipeline — keypoints, Harris responses, orientation
//! angles/labels, descriptors, and extraction stats — for every paper
//! sequence, every pyramid depth, odd and degenerate image sizes, every
//! descriptor kind, and every worker-pool shape, no matter what
//! `ESLAM_EXTRACT` is set to in the environment (both paths are driven
//! directly here, so the CI matrix exercises the same assertions under
//! both forced settings).

use eslam_core::{run_sequence, Slam, SlamConfig};
use eslam_dataset::sequence::{SequenceSpec, SyntheticSequence};
use eslam_features::orb::{DescriptorKind, OrbConfig, OrbExtractor, OrbScratch, Workflow};
use eslam_features::{BandMode, ExtractMode};
use eslam_image::pyramid::PyramidConfig;
use eslam_image::GrayImage;

const IMAGE_SCALE: f64 = 0.25;

fn paper_sequences(frames: usize) -> Vec<SyntheticSequence> {
    SequenceSpec::paper_sequences(frames, IMAGE_SCALE)
        .iter()
        .map(|spec| spec.build())
        .collect()
}

/// A corner-rich checkerboard with per-pixel variation (pure
/// checkerboards have no FAST-9 corners).
fn textured(w: u32, h: u32, seed: u64) -> GrayImage {
    GrayImage::from_fn(w, h, |x, y| {
        let base = if ((x / 12) + (y / 12)) % 2 == 0 {
            50
        } else {
            190
        };
        base + ((x as u64 * 31 + y as u64 * 17 + seed * 1009) % 23) as u8
    })
}

/// Asserts full bit-identity of the two extraction paths on one image,
/// with a context message; the `OrbFeatures` equality covers keypoints
/// (coordinates, responses, angles, labels), descriptors, and stats.
fn assert_paths_identical(extractor: &OrbExtractor, img: &GrayImage, context: &str) {
    let stream = extractor.extract_stream_with(img, &mut OrbScratch::default());
    let passes = extractor.extract_passes_with(img, &mut OrbScratch::default());
    assert_eq!(stream, passes, "{context}");
}

#[test]
fn streaming_bit_identical_across_all_paper_sequences() {
    let extractor = OrbExtractor::new(OrbConfig::default());
    for seq in paper_sequences(3) {
        for (i, frame) in seq.frames().enumerate() {
            assert_paths_identical(&extractor, &frame.gray, &format!("{} frame {i}", seq.name));
        }
    }
}

#[test]
fn streaming_bit_identical_across_pyramid_depths() {
    // All pyramid levels stream, including the tiny top levels whose
    // height approaches the descriptor halo.
    let seq = &paper_sequences(2)[0];
    let frame = seq.frame(0);
    for levels in [1usize, 2, 4, 6] {
        let extractor = OrbExtractor::new(OrbConfig {
            pyramid: PyramidConfig {
                levels,
                scale_factor: 1.2,
            },
            ..Default::default()
        });
        assert_paths_identical(&extractor, &frame.gray, &format!("{levels} levels"));
    }
}

#[test]
fn streaming_bit_identical_on_odd_and_degenerate_sizes() {
    // Below-band sizes (nothing extractable), widths that exercise the
    // SIMD row tails, and heights straddling the ring size.
    let extractor = OrbExtractor::new(OrbConfig::default());
    for (w, h) in [
        (1u32, 1u32),
        (6, 6),
        (7, 7),
        (8, 40),
        (40, 8),
        (17, 19),
        (31, 33),
        (37, 64),
        (41, 100),
        (65, 48),
        (101, 77),
        (64, 64),
    ] {
        assert_paths_identical(&extractor, &textured(w, h, 11), &format!("{w}x{h}"));
    }
}

#[test]
fn streaming_bit_identical_for_all_descriptor_kinds_and_workflows() {
    // The Original workflow cannot stream (its post-filter descriptor
    // stage needs the full smoothed frame); extract_stream_with must
    // fall back and still agree exactly.
    let img = textured(200, 150, 3);
    for kind in [
        DescriptorKind::RsBrief,
        DescriptorKind::OriginalLut,
        DescriptorKind::OriginalDirect,
    ] {
        for workflow in [Workflow::Rescheduled, Workflow::Original] {
            let extractor = OrbExtractor::new(OrbConfig {
                descriptor: kind,
                workflow,
                max_features: 200,
                ..Default::default()
            });
            assert_paths_identical(&extractor, &img, &format!("{kind:?} {workflow:?}"));
        }
    }
}

#[test]
fn streaming_bit_identical_across_worker_pool_shapes() {
    // Parallel levels must not perturb either path: 1 thread, a small
    // pool, and the process-global pool all agree with the single-pool
    // passes result.
    let extractor = OrbExtractor::new(OrbConfig::default());
    let img = paper_sequences(1)[2].frame(0).gray.clone();
    let oracle = extractor.extract_passes_with(&img, &mut OrbScratch::default());
    for threads in [Some(1), Some(3), None] {
        let mut scratch = match threads {
            Some(_) => OrbScratch::with_threads(threads),
            None => OrbScratch::default(),
        };
        let streamed = extractor.extract_stream_with(&img, &mut scratch);
        assert_eq!(streamed, oracle, "threads {threads:?}");
    }
}

#[test]
fn band_parallel_bit_identical_across_paper_and_loop_sequences() {
    // The PR 10 tentpole oracle: splitting each level into row bands —
    // the `ESLAM_BANDS=1|2|4` axis the CI matrix forces — must be
    // invisible in the output on every paper sequence AND the
    // loop-closure sequences, against the multi-pass reference.
    let sequences: Vec<SyntheticSequence> = SequenceSpec::paper_sequences(2, IMAGE_SCALE)
        .iter()
        .chain(SequenceSpec::loop_sequences(2, IMAGE_SCALE).iter())
        .map(|spec| spec.build())
        .collect();
    let reference = OrbExtractor::new(OrbConfig::default());
    for seq in &sequences {
        for (i, frame) in seq.frames().enumerate() {
            let oracle = reference.extract_passes_with(&frame.gray, &mut OrbScratch::default());
            for bands in [1usize, 2, 4] {
                let banded = OrbExtractor::new(OrbConfig {
                    bands: BandMode::Fixed(bands),
                    ..Default::default()
                });
                let split = banded.extract_stream_with(&frame.gray, &mut OrbScratch::default());
                assert_eq!(split, oracle, "{} frame {i} bands {bands}", seq.name);
            }
        }
    }
}

#[test]
fn band_parallel_bit_identical_across_worker_pool_shapes() {
    // Band count × pool shape: the depth-first schedule dispatches onto
    // whatever pool the scratch carries (1 thread = inline help-drain,
    // a small private pool, the process-global pool) and the merge must
    // stay deterministic under every shape.
    let img = paper_sequences(1)[2].frame(0).gray.clone();
    let oracle = OrbExtractor::new(OrbConfig::default())
        .extract_passes_with(&img, &mut OrbScratch::default());
    for bands in [2usize, 4] {
        let extractor = OrbExtractor::new(OrbConfig {
            bands: BandMode::Fixed(bands),
            ..Default::default()
        });
        for threads in [Some(1), Some(3), None] {
            let mut scratch = match threads {
                Some(_) => OrbScratch::with_threads(threads),
                None => OrbScratch::default(),
            };
            let streamed = extractor.extract_stream_with(&img, &mut scratch);
            assert_eq!(streamed, oracle, "bands {bands} threads {threads:?}");
        }
    }
}

#[test]
fn full_pipeline_identical_under_all_band_counts() {
    // End-to-end: a Slam run with the band count pinned to 2 or 4 must
    // reproduce the single-band trajectory, tracking decisions and
    // feature counts bit for bit.
    for seq in paper_sequences(4).into_iter().take(2) {
        let runs: Vec<_> = [1usize, 2, 4]
            .into_iter()
            .map(|bands| {
                let mut config = SlamConfig::scaled_for_tests(1.0 / IMAGE_SCALE);
                config.orb.extract = ExtractMode::Stream;
                config.orb.bands = BandMode::Fixed(bands);
                run_sequence(&seq, config)
            })
            .collect();
        let oracle = &runs[0];
        for (bands, run) in [2usize, 4].into_iter().zip(&runs[1..]) {
            assert_eq!(run.reports.len(), oracle.reports.len(), "{}", seq.name);
            for (r, m) in run.reports.iter().zip(&oracle.reports) {
                let ctx = format!("{} frame {} (bands {bands})", seq.name, m.index);
                assert_eq!(r.pose_c2w, m.pose_c2w, "{ctx}: pose");
                assert_eq!(r.extraction, m.extraction, "{ctx}: feature counts");
                assert_eq!(r.raw_matches, m.raw_matches, "{ctx}: raw matches");
                assert_eq!(r.inliers, m.inliers, "{ctx}: inliers");
                assert_eq!(r.is_keyframe, m.is_keyframe, "{ctx}: keyframe flag");
                assert_eq!(r.tracking_ok, m.tracking_ok, "{ctx}: tracking flag");
                assert_eq!(r.map_size, m.map_size, "{ctx}: map size");
            }
            assert_eq!(
                run.estimate.poses(),
                oracle.estimate.poses(),
                "{} (bands {bands}): trajectory",
                seq.name
            );
        }
    }
}

#[test]
fn full_pipeline_identical_under_all_extract_modes() {
    // End-to-end oracle: a Slam run with the extraction path pinned to
    // passes versus stream versus auto — trajectories, tracking
    // decisions and feature counts must agree exactly.
    for seq in paper_sequences(4).into_iter().take(2) {
        let runs: Vec<_> = [ExtractMode::Passes, ExtractMode::Stream, ExtractMode::Auto]
            .into_iter()
            .map(|mode| {
                let mut config = SlamConfig::scaled_for_tests(1.0 / IMAGE_SCALE);
                config.orb.extract = mode;
                run_sequence(&seq, config)
            })
            .collect();
        let oracle = &runs[0];
        for (mode, run) in [ExtractMode::Stream, ExtractMode::Auto]
            .into_iter()
            .zip(&runs[1..])
        {
            assert_eq!(run.reports.len(), oracle.reports.len(), "{}", seq.name);
            for (r, m) in run.reports.iter().zip(&oracle.reports) {
                let ctx = format!("{} frame {} ({mode:?})", seq.name, m.index);
                assert_eq!(r.pose_c2w, m.pose_c2w, "{ctx}: pose");
                assert_eq!(r.extraction, m.extraction, "{ctx}: feature counts");
                assert_eq!(r.raw_matches, m.raw_matches, "{ctx}: raw matches");
                assert_eq!(r.inliers, m.inliers, "{ctx}: inliers");
                assert_eq!(r.is_keyframe, m.is_keyframe, "{ctx}: keyframe flag");
                assert_eq!(r.tracking_ok, m.tracking_ok, "{ctx}: tracking flag");
                assert_eq!(r.map_size, m.map_size, "{ctx}: map size");
            }
            assert_eq!(
                run.estimate.poses(),
                oracle.estimate.poses(),
                "{} ({mode:?}): trajectory",
                seq.name
            );
        }
    }
}

#[test]
fn streaming_working_memory_is_height_independent() {
    // The line-buffer claim at the tier level: same width, 8× the
    // height, identical peak extraction working memory — while the
    // results still match the multi-pass oracle on both shapes.
    let extractor = OrbExtractor::new(OrbConfig::default());
    let mut short = OrbScratch::default();
    let mut tall = OrbScratch::default();
    let short_img = textured(160, 120, 5);
    let tall_img = textured(160, 960, 5);
    let short_run = extractor.extract_stream_with(&short_img, &mut short);
    let tall_run = extractor.extract_stream_with(&tall_img, &mut tall);
    assert_eq!(
        short_run,
        extractor.extract_passes_with(&short_img, &mut OrbScratch::default())
    );
    assert_eq!(
        tall_run,
        extractor.extract_passes_with(&tall_img, &mut OrbScratch::default())
    );
    let bytes = short.stream_working_bytes();
    assert!(bytes > 0, "streaming pass must have used its line buffers");
    assert_eq!(
        bytes,
        tall.stream_working_bytes(),
        "line-buffer bytes must not scale with image height"
    );
}

#[test]
fn band_parallel_working_memory_scales_with_bands_not_height() {
    // The tier-pinned memory bound with bands: O(width)·bands. Each of
    // the four bands holds a full-width line-buffer set (the halo
    // duplication `stream_working_bytes` must charge), so 4 bands cost
    // exactly 4× one band — and still nothing scales with height.
    let banded = OrbExtractor::new(OrbConfig {
        bands: BandMode::Fixed(4),
        ..Default::default()
    });
    let mut short = OrbScratch::default();
    let mut tall = OrbScratch::default();
    banded.extract_stream_with(&textured(160, 120, 5), &mut short);
    banded.extract_stream_with(&textured(160, 960, 5), &mut tall);
    let four_band_bytes = short.stream_working_bytes();
    assert!(four_band_bytes > 0);
    assert_eq!(
        four_band_bytes,
        tall.stream_working_bytes(),
        "band line-buffer bytes must not scale with image height"
    );

    let single = OrbExtractor::new(OrbConfig {
        bands: BandMode::Fixed(1),
        ..Default::default()
    });
    let mut one = OrbScratch::default();
    single.extract_stream_with(&textured(160, 120, 5), &mut one);
    assert_eq!(
        four_band_bytes,
        4 * one.stream_working_bytes(),
        "4 bands must charge exactly 4 full line-buffer sets"
    );
}

#[test]
fn slam_default_config_streams_and_matches_manual_extraction() {
    // The default Auto mode streams under the default Rescheduled
    // workflow; a Slam frame step must agree with manual extraction on
    // the same image regardless.
    let seq = &paper_sequences(2)[1];
    let frame = seq.frame(0);
    let mut slam = Slam::builder()
        .config(SlamConfig::scaled_for_tests(1.0 / IMAGE_SCALE))
        .build();
    let report = slam.process(frame.timestamp, &frame.gray, &frame.depth);
    let config = SlamConfig::scaled_for_tests(1.0 / IMAGE_SCALE);
    let manual = OrbExtractor::new(config.orb).extract(&frame.gray);
    assert_eq!(report.extraction.kept, manual.stats.kept);
    assert_eq!(report.extraction.candidates, manual.stats.candidates);
}
