//! End-to-end integration: the full SLAM system on synthetic stand-ins
//! of the paper's five TUM sequences (§4.1), evaluated with the ATE
//! metric of Fig. 8.
//!
//! Frames are rendered at quarter scale (160×120) to keep the suite
//! fast; the pipeline code paths are identical to the full-resolution
//! benches.

use eslam_core::{Slam, SlamConfig};
use eslam_dataset::sequence::SequenceSpec;
use eslam_dataset::{absolute_trajectory_error, Trajectory};
use eslam_features::orb::DescriptorKind;

const FRAMES: usize = 12;
const IMAGE_SCALE: f64 = 0.25;

/// Runs SLAM over a sequence spec; returns (estimate, ground truth,
/// tracked-frame count, keyframes).
fn run_sequence(
    spec_index: usize,
    descriptor: DescriptorKind,
) -> (Trajectory, Trajectory, usize, usize) {
    let spec = &SequenceSpec::paper_sequences(FRAMES, IMAGE_SCALE)[spec_index];
    let seq = spec.build();
    let mut config = SlamConfig::scaled_for_tests(1.0 / IMAGE_SCALE);
    config.orb.descriptor = descriptor;
    let mut slam = Slam::builder().config(config).build();
    let mut tracked = 0;
    for frame in seq.frames() {
        let report = slam.process(frame.timestamp, &frame.gray, &frame.depth);
        if report.tracking_ok {
            tracked += 1;
        }
    }
    let mut truth = Trajectory::new();
    for tp in seq.trajectory.poses() {
        truth.push(tp.timestamp, tp.pose);
    }
    (slam.trajectory().clone(), truth, tracked, slam.keyframes())
}

#[test]
fn tracks_xyz_sequence_with_low_ate() {
    let (est, truth, tracked, _) = run_sequence(0, DescriptorKind::RsBrief);
    assert_eq!(tracked, FRAMES, "lost tracking on fr1/xyz stand-in");
    let ate = absolute_trajectory_error(&est, &truth).expect("ATE computable");
    // The paper reports ~2-6 cm ATE on real TUM; the synthetic stand-in
    // at quarter resolution should stay within the same order.
    assert!(
        ate.stats.rmse < 0.10,
        "ATE rmse {:.4} m too large",
        ate.stats.rmse
    );
}

#[test]
fn tracks_desk_sequence_with_low_ate() {
    let (est, truth, tracked, keyframes) = run_sequence(2, DescriptorKind::RsBrief);
    assert!(tracked >= FRAMES - 1, "tracked only {tracked}/{FRAMES}");
    assert!(keyframes >= 1);
    let ate = absolute_trajectory_error(&est, &truth).expect("ATE computable");
    assert!(
        ate.stats.rmse < 0.15,
        "ATE rmse {:.4} m too large",
        ate.stats.rmse
    );
}

#[test]
fn tracks_rotation_only_sequence() {
    // fr2/rpy: pure rotation — the regime where the paper argues
    // feature-based methods outshine optical flow (§4.4).
    let (est, truth, tracked, _) = run_sequence(4, DescriptorKind::RsBrief);
    assert!(tracked >= FRAMES - 1, "tracked only {tracked}/{FRAMES}");
    // Positions barely move; check orientation drift instead.
    let t0 = truth.poses()[0].pose;
    let mut worst_angle = 0.0f64;
    for (e, t) in est.poses().iter().zip(truth.poses()) {
        // Re-base truth to its first pose: the estimate's world frame is
        // the first camera frame.
        let rebased = t0.inverse().compose(&t.pose);
        let delta = e.pose.relative_to(&rebased).rotation_angle();
        worst_angle = worst_angle.max(delta);
    }
    assert!(
        worst_angle < 0.12,
        "orientation drift {worst_angle:.4} rad too large"
    );
}

#[test]
fn rs_brief_accuracy_is_comparable_to_original_orb() {
    // Fig. 8's claim: RS-BRIEF trajectory error is comparable to the
    // original ORB descriptor (4.30 cm vs 4.16 cm on average — within a
    // few percent, not an order of magnitude).
    let (est_rs, truth, tracked_rs, _) = run_sequence(0, DescriptorKind::RsBrief);
    let (est_orig, _, tracked_orig, _) = run_sequence(0, DescriptorKind::OriginalLut);
    assert_eq!(tracked_rs, FRAMES);
    assert_eq!(tracked_orig, FRAMES);
    let ate_rs = absolute_trajectory_error(&est_rs, &truth)
        .unwrap()
        .stats
        .rmse;
    let ate_orig = absolute_trajectory_error(&est_orig, &truth)
        .unwrap()
        .stats
        .rmse;
    // Comparable: neither degrades the other by more than 3× on this
    // short sequence (paper: within 4% averaged over five sequences).
    let ratio = ate_rs.max(ate_orig) / ate_rs.min(ate_orig).max(1e-6);
    assert!(
        ratio < 3.0,
        "RS-BRIEF {ate_rs:.4} vs original {ate_orig:.4}: ratio {ratio:.2}"
    );
}

#[test]
fn keyframes_trigger_map_growth() {
    let spec = &SequenceSpec::paper_sequences(FRAMES, IMAGE_SCALE)[3]; // room
    let seq = spec.build();
    let mut slam = Slam::builder()
        .config(SlamConfig::scaled_for_tests(1.0 / IMAGE_SCALE))
        .build();
    let mut sizes = Vec::new();
    let mut any_keyframe_after_bootstrap = false;
    for frame in seq.frames() {
        let r = slam.process(frame.timestamp, &frame.gray, &frame.depth);
        if r.index > 0 && r.is_keyframe {
            any_keyframe_after_bootstrap = true;
        }
        sizes.push(r.map_size);
    }
    assert!(
        any_keyframe_after_bootstrap,
        "room loop should spawn keyframes"
    );
    assert!(
        *sizes.last().unwrap() >= sizes[0],
        "map shrank unexpectedly: {sizes:?}"
    );
}

#[test]
fn estimated_trajectory_is_rebased_to_first_frame() {
    let (est, _, _, _) = run_sequence(1, DescriptorKind::RsBrief);
    let first = est.poses()[0].pose;
    assert!(first.translation.norm() < 1e-12);
    assert!(first.rotation_angle() < 1e-12);
}

#[test]
fn survives_a_dropout_frame() {
    // Inject a featureless (flat gray) frame mid-sequence — a sensor
    // glitch. Tracking must fail gracefully on it (pose held, no panic)
    // and recover on the next real frame.
    use eslam_core::SequenceStats;
    let spec = &SequenceSpec::paper_sequences(8, IMAGE_SCALE)[0];
    let seq = spec.build();
    let mut slam = Slam::builder()
        .config(SlamConfig::scaled_for_tests(1.0 / IMAGE_SCALE))
        .build();
    let mut reports = Vec::new();
    for (i, frame) in seq.frames().enumerate() {
        if i == 4 {
            let flat =
                eslam_image::GrayImage::from_fn(frame.gray.width(), frame.gray.height(), |_, _| {
                    127
                });
            let empty_depth =
                eslam_image::DepthImage::new(frame.depth.width(), frame.depth.height());
            let r = slam.process(frame.timestamp, &flat, &empty_depth);
            assert!(!r.tracking_ok, "flat frame cannot be tracked");
            reports.push(r);
            continue;
        }
        reports.push(slam.process(frame.timestamp, &frame.gray, &frame.depth));
    }
    // All real frames after the dropout recover.
    for r in reports.iter().skip(5) {
        assert!(r.tracking_ok, "frame {} did not recover", r.index);
    }
    let stats = SequenceStats::from_reports(&reports);
    assert_eq!(stats.frames, 8);
    assert_eq!(stats.tracked, 7);
    assert!(stats.tracking_ratio() > 0.8);
}

#[test]
fn disk_round_trip_preserves_slam_results() {
    // Export a sequence to a TUM-style directory, reload it, and verify
    // the SLAM pipeline produces identical per-frame reports.
    let spec = &SequenceSpec::paper_sequences(4, IMAGE_SCALE)[0];
    let seq = spec.build();
    let root = std::env::temp_dir().join(format!("eslam_e2e_disk_{}", std::process::id()));
    eslam_dataset::disk::export_sequence(&seq, &root).expect("export");
    let disk = eslam_dataset::disk::DiskSequence::open(&root).expect("open");

    let run = |frames: Vec<eslam_dataset::Frame>| {
        let mut slam = Slam::builder()
            .config(SlamConfig::scaled_for_tests(1.0 / IMAGE_SCALE))
            .build();
        frames
            .into_iter()
            .map(|f| slam.process(f.timestamp, &f.gray, &f.depth))
            .collect::<Vec<_>>()
    };
    let from_memory = run(seq.frames().collect());
    let from_disk = run((0..disk.len()).map(|i| disk.frame(i).unwrap()).collect());
    assert_eq!(from_memory.len(), from_disk.len());
    for (a, b) in from_memory.iter().zip(&from_disk) {
        assert_eq!(a.inliers, b.inliers, "frame {}", a.index);
        assert_eq!(a.pose_c2w, b.pose_c2w, "frame {}", a.index);
    }
    std::fs::remove_dir_all(&root).ok();
}
